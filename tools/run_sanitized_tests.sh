#!/usr/bin/env bash
# Builds the test suite under sanitizers and runs it.
#
# Usage: tools/run_sanitized_tests.sh [address|undefined|thread|address,undefined]
#   default: address, undefined, and thread as separate builds (combining
#   address+undefined works but mixes the reports; thread is mutually
#   exclusive with address/leak and is rejected up front). Each configuration
#   builds into build-san-<name>/ so the normal build/ tree stays untouched.
#
# The thread (TSan) leg runs only the concurrency-relevant tests: the full
# suite under TSan is 10-20x slower and the remaining tests are
# single-threaded by construction. Pass OPTR_TSAN_ALL=1 to run everything.
#
# Exit status is nonzero if any sanitized test fails; sanitizer reports are
# fatal (-fno-sanitize-recover=all), so a single UB / race hit fails its
# test.
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("${1:-address}")
if [[ $# -eq 0 ]]; then
  configs=(address undefined thread)
fi

for san in "${configs[@]}"; do
  if [[ "${san}" == *thread* && ("${san}" == *address* || "${san}" == *leak*) ]]; then
    echo "error: OPTR_SANITIZE='${san}' is invalid -- ThreadSanitizer cannot" >&2
    echo "be combined with AddressSanitizer/LeakSanitizer (conflicting shadow" >&2
    echo "memory). Run them as separate configurations:" >&2
    echo "  tools/run_sanitized_tests.sh address && tools/run_sanitized_tests.sh thread" >&2
    exit 2
  fi
done

# Tests that exercise the parallel solve paths (parallel B&B, thread-pool
# batch evaluation, concurrent fault probes) plus the observability layer
# (lock-free trace rings, relaxed-atomic metric counters) and the fleet
# machinery (worker heartbeat threads, multi-process lease traffic) -- the
# TSan leg's target set. ctest registers gtest suite names, so the filter
# matches those.
tsan_filter='MipParallel|BatchR|FaultInjection|LocalImprover|RuleEvaluator|Obs|Metrics|Trace|ClipSession|SweepFleet|SweepWorker|SweepProtocol|LeaseTable|CheckpointIO|RetryPolicy|LpPricing|SessionPool|RequestBroker|ResultCache|ServiceProtocol|ServiceServer|LiveExport|CacheKey'

status=0
for san in "${configs[@]}"; do
  dir="build-san-${san//,/+}"
  echo "=== ${san}: configuring into ${dir} ==="
  cmake -B "${dir}" -S . -DOPTR_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${dir}" -j > /dev/null
  echo "=== ${san}: running ctest ==="
  ctest_args=(--test-dir "${dir}" --output-on-failure -j "$(nproc)")
  if [[ "${san}" == "thread" && "${OPTR_TSAN_ALL:-0}" != "1" ]]; then
    echo "    (concurrency tests only: ${tsan_filter}; OPTR_TSAN_ALL=1 for all)"
    ctest_args+=(-R "${tsan_filter}")
  fi
  if ! ctest "${ctest_args[@]}"; then
    status=1
  fi
  if [[ "${san}" == "thread" ]]; then
    # End-to-end race check: a traced, metered, thread-pool batch drives the
    # trace rings and metric atomics from real worker threads, then the
    # analyzer parses the result. Session reuse is on by default, so this is
    # also the ClipSession race check: each pool worker owns a session cache
    # (base build + per-rule overlays + cross-rule warm starts) while sharing
    # the registry and trace rings. Unit tests cover the pieces; this covers
    # their composition under TSan. --mip-threads 4 additionally drives the
    # new pricing/dual-restart kernel code from parallel B&B workers.
    echo "=== ${san}: traced batch end-to-end (session reuse on) ==="
    rm -f "${dir}/tsan_batch.ckpt" "${dir}/tsan_trace.jsonl" \
      "${dir}/tsan_metrics.json"
    if ! "${dir}/tools/optrouter" batch examples/example.clips \
         "${dir}/tsan_batch.ckpt" RULE1 RULE3 \
         --isolation=thread --threads 2 --mip-threads 4 \
         --trace="${dir}/tsan_trace.jsonl" --metrics \
         --metrics-out="${dir}/tsan_metrics.json"; then
      status=1
    fi
    if ! "${dir}/tools/trace_report" "${dir}/tsan_trace.jsonl"; then
      status=1
    fi
    # The v2 attrs written by those parallel workers must join losslessly:
    # the Table 5 attribution reproduces the checkpoint byte-for-byte even
    # when spans were emitted from racing pool + B&B threads.
    if ! "${dir}/tools/optrouter" trace-report "${dir}/tsan_trace.jsonl" \
         --table5 --verify-join="${dir}/tsan_batch.ckpt"; then
      status=1
    fi
    # Traced daemon round-trip under TSan: the live metrics exporter and
    # TraceSession::pulse run on the poll loop while broker worker threads
    # record histograms and spans -- the cross-thread composition the unit
    # tests cannot cover. Ping + shutdown drive the stats and drain paths.
    echo "=== ${san}: traced daemon round-trip (live exporter + ping) ==="
    tsan_sock="${dir}/tsan_service.sock"
    rm -f "${tsan_sock}" "${dir}/tsan_service_metrics.jsonl" \
      "${dir}/tsan_service_trace.jsonl"
    "${dir}/tools/optrouter" serve --listen "unix:${tsan_sock}" --workers 2 \
      --trace="${dir}/tsan_service_trace.jsonl" \
      --metrics-out="${dir}/tsan_service_metrics.jsonl" \
      --telemetry-interval 0.1 > "${dir}/tsan_service.log" &
    tsan_service_pid=$!
    for _ in $(seq 1 100); do
      [[ -S "${tsan_sock}" ]] && break
      sleep 0.1
    done
    if ! "${dir}/tools/service_client" "unix:${tsan_sock}" \
         route examples/example.clips RULE1 > /dev/null; then
      status=1
    fi
    if ! "${dir}/tools/service_client" "unix:${tsan_sock}" ping > /dev/null
    then
      status=1
    fi
    if ! "${dir}/tools/service_client" "unix:${tsan_sock}" shutdown; then
      status=1
    fi
    if ! wait "${tsan_service_pid}"; then
      status=1
    fi
    if ! tail -n 1 "${dir}/tsan_service_metrics.jsonl" \
         | grep -q '"final":true'; then
      echo "FAIL: live metrics export missing its final row" >&2
      status=1
    fi
  fi
done
exit ${status}
