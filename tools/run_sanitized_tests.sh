#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer and UBSan and runs it.
#
# Usage: tools/run_sanitized_tests.sh [address|undefined|address,undefined]
#   default: both, as separate builds (combining them works but mixes the
#   reports). Each configuration builds into build-san-<name>/ so the normal
#   build/ tree stays untouched.
#
# Exit status is nonzero if any sanitized test fails; sanitizer reports are
# fatal (-fno-sanitize-recover=all), so a single UB hit fails its test.
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("${1:-address}" )
if [[ $# -eq 0 ]]; then
  configs=(address undefined)
fi

status=0
for san in "${configs[@]}"; do
  dir="build-san-${san//,/+}"
  echo "=== ${san}: configuring into ${dir} ==="
  cmake -B "${dir}" -S . -DOPTR_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${dir}" -j > /dev/null
  echo "=== ${san}: running ctest ==="
  if ! ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"; then
    status=1
  fi
done
exit ${status}
