// Shared implementation of the trace-report command, used by both the
// standalone tools/trace_report binary and `optrouter trace-report`.
//
//   trace-report <trace.jsonl...> [--table5] [--baseline=RULE]
//                [--json=FILE] [--verify-join=ckpt.jsonl] [--stitch]
//
// Several trace files merge into one span stream (fleet workers each write
// their own file; obs::loadTraces re-keys span ids so they cannot collide).
// Output sections:
//   * phases     one row per span name: count, total/self time, p50/p95/p99
//                duration, share of the session, mean LP pivots for mip.node
//   * rules      per design rule: solves, time, summed B&B nodes, LP pivots
//   * coverage   root-span time vs the session wall clock
//   * anomalies  pivot outliers, per-thread ring-overflow drops
//   * table5     (--table5) rule-impact attribution vs --baseline;
//                --json writes the JSON document, --verify-join checks the
//                join is lossless against a batch/sweep checkpoint JSONL
//   * stitch     (--stitch) cross-process causality: per-root descendant
//                counts/durations after mergeTraces resolves remote-parent
//                references, plus a work-conservation check (no stitched
//                descendant outlasts its root)
//
// Exit status: 0 ok, 1 parse error or verify-join mismatch, 2 usage.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/analyze.h"
#include "report/attribution.h"
#include "report/table.h"

namespace optr::tools {

namespace trace_report_detail {

inline std::string fmtMs(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(ns) / 1e6);
  return buf;
}

inline std::string fmtPct(std::int64_t part, std::int64_t whole) {
  if (whole <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

}  // namespace trace_report_detail

/// argv[0] is the program/subcommand name; argv[1..argc-1] are operands.
inline int traceReportMain(int argc, char** argv) {
  using trace_report_detail::fmtMs;
  using trace_report_detail::fmtPct;

  std::vector<std::string> paths;
  bool table5 = false;
  bool stitch = false;
  report::AttributionOptions attrOpt;
  std::string jsonPath;
  std::string verifyPath;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--table5") {
      table5 = true;
    } else if (arg == "--stitch") {
      stitch = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      attrOpt.baselineRule = arg.substr(std::strlen("--baseline="));
      table5 = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      jsonPath = arg.substr(std::strlen("--json="));
      table5 = true;
    } else if (arg.rfind("--verify-join=", 0) == 0) {
      verifyPath = arg.substr(std::strlen("--verify-join="));
      table5 = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s <trace.jsonl...> [--table5] [--baseline=RULE]\n"
                 "       [--json=FILE] [--verify-join=checkpoint.jsonl]\n"
                 "       [--stitch]\n",
                 argv[0]);
    return 2;
  }

  obs::TraceLoadStats stats;
  auto entriesOr = obs::loadTraces(paths, &stats);
  if (!entriesOr.isOk()) {
    std::fprintf(stderr, "%s\n", entriesOr.status().message().c_str());
    return 1;
  }
  const std::vector<obs::TraceEntry>& entries = entriesOr.value();
  obs::TraceReport rep = obs::analyzeTrace(entries);

  std::string label = paths[0];
  if (paths.size() > 1) {
    label += " (+" + std::to_string(paths.size() - 1) + " merged)";
  }
  std::printf(
      "trace: %s  (%" PRId64 " spans, %" PRId64 " events, session %s ms)\n\n",
      label.c_str(), rep.spans, rep.events, fmtMs(rep.sessionNs).c_str());

  report::Table phases({"phase", "count", "total ms", "self ms", "self %",
                        "p50 ms", "p95 ms", "p99 ms", "mean arg"});
  for (const obs::PhaseRow& p : rep.phases) {
    char meanBuf[32] = "-";
    if (p.meanArg > 0.0)
      std::snprintf(meanBuf, sizeof meanBuf, "%.1f", p.meanArg);
    phases.addRow({p.name, std::to_string(p.count), fmtMs(p.totalNs),
                   fmtMs(p.selfNs), fmtPct(p.selfNs, rep.sessionNs),
                   fmtMs(p.p50Ns), fmtMs(p.p95Ns), fmtMs(p.p99Ns), meanBuf});
  }
  std::printf("%s\n", phases.render().c_str());

  if (!rep.rules.empty()) {
    report::Table rules({"rule", "solves", "total ms", "nodes", "pivots"});
    for (const obs::RuleRow& r : rep.rules) {
      char nodesBuf[32], pivotsBuf[32];
      std::snprintf(nodesBuf, sizeof nodesBuf, "%.0f", r.nodes);
      std::snprintf(pivotsBuf, sizeof pivotsBuf, "%.0f", r.pivots);
      rules.addRow({r.rule, std::to_string(r.solves), fmtMs(r.totalNs),
                    nodesBuf, pivotsBuf});
    }
    std::printf("%s\n", rules.render().c_str());
  }

  std::printf("coverage: root spans %s ms of %s ms session wall (%s)\n",
              fmtMs(rep.rootNs).c_str(), fmtMs(rep.sessionNs).c_str(),
              fmtPct(rep.rootNs, rep.sessionNs).c_str());
  if (rep.dropped > 0) {
    std::printf("dropped records: %" PRId64 "\n", rep.dropped);
  }
  if (stats.malformed > 0) {
    std::printf("skipped %" PRId64 " malformed line%s (torn writes?)\n",
                stats.malformed, stats.malformed == 1 ? "" : "s");
  }

  if (!rep.anomalies.empty()) {
    std::printf("\nanomalies:\n");
    for (const std::string& a : rep.anomalies) {
      std::printf("  ! %s\n", a.c_str());
    }
  }

  if (stitch) {
    // Cross-process causality after mergeTraces resolved remote-parent
    // references: walk the span forest and report each root's stitched
    // subtree, then check work conservation (a remote child recorded by
    // another process must not outlast the root that requested it).
    std::map<std::uint64_t, std::size_t> byId;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].type == "span" && entries[i].id != 0)
        byId.emplace(entries[i].id, i);
    }
    std::map<std::uint64_t, std::vector<std::uint64_t>> children;
    std::int64_t stitchedEdges = 0;
    std::vector<std::uint64_t> roots;
    for (const auto& [id, idx] : byId) {
      const obs::TraceEntry& e = entries[idx];
      if (e.stitched) ++stitchedEdges;
      if (e.parent != 0 && byId.count(e.parent)) {
        children[e.parent].push_back(id);
      } else {
        roots.push_back(id);
      }
    }
    std::printf("\nstitch: %zu root span%s, %" PRId64
                " stitched cross-process edge%s\n",
                roots.size(), roots.size() == 1 ? "" : "s", stitchedEdges,
                stitchedEdges == 1 ? "" : "s");
    report::Table tree({"root", "descendants", "stitched", "root ms",
                        "max child ms", "conserved"});
    bool allConserved = true;
    for (std::uint64_t rootId : roots) {
      const obs::TraceEntry& root = entries[byId[rootId]];
      std::int64_t descendants = 0, stitchedBelow = 0, maxChildNs = 0;
      std::vector<std::uint64_t> work = {rootId};
      while (!work.empty()) {
        std::uint64_t cur = work.back();
        work.pop_back();
        auto kids = children.find(cur);
        if (kids == children.end()) continue;
        for (std::uint64_t kid : kids->second) {
          const obs::TraceEntry& child = entries[byId[kid]];
          ++descendants;
          if (child.stitched) ++stitchedBelow;
          maxChildNs = std::max(maxChildNs, child.dur);
          work.push_back(kid);
        }
      }
      bool conserved = maxChildNs <= root.dur;
      if (descendants > 0 && !conserved) allConserved = false;
      tree.addRow({root.name, std::to_string(descendants),
                   std::to_string(stitchedBelow), fmtMs(root.dur),
                   descendants > 0 ? fmtMs(maxChildNs) : "-",
                   descendants > 0 ? (conserved ? "yes" : "NO") : "-"});
    }
    std::printf("%s", tree.render().c_str());
    std::printf("work conservation: %s\n",
                allConserved ? "ok (no descendant outlasts its root)"
                             : "VIOLATED (descendant outlasts its root)");
    if (!allConserved) return 1;
  }

  if (!table5) return 0;

  report::AttributionReport attr = report::attributeRules(entries, attrOpt);
  std::printf("\n%s", renderAttributionText(attr).c_str());

  if (!jsonPath.empty()) {
    std::string doc = attributionToJson(attr);
    if (jsonPath == "-") {
      std::printf("%s\n", doc.c_str());
    } else {
      std::FILE* f = std::fopen(jsonPath.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "--json: cannot write %s\n", jsonPath.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("attribution JSON written to %s\n", jsonPath.c_str());
    }
  }

  if (!verifyPath.empty()) {
    auto mismatchesOr = report::verifyJoin(attr, verifyPath);
    if (!mismatchesOr.isOk()) {
      std::fprintf(stderr, "--verify-join: %s\n",
                   mismatchesOr.status().message().c_str());
      return 1;
    }
    const std::vector<std::string>& mismatches = mismatchesOr.value();
    if (mismatches.empty()) {
      std::printf(
          "verify-join: lossless (%zu tasks byte-equal to %s)\n",
          attr.tasks.size(), verifyPath.c_str());
    } else {
      std::printf("verify-join: %zu mismatch%s vs %s\n", mismatches.size(),
                  mismatches.size() == 1 ? "" : "es", verifyPath.c_str());
      for (const std::string& m : mismatches) {
        std::printf("  ! %s\n", m.c_str());
      }
      return 1;
    }
  }
  return 0;
}

}  // namespace optr::tools
