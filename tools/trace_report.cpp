// trace_report — aggregates one or more optr-trace JSONL files (written by
// `optrouter batch --trace=...`, fleet workers, or any obs::TraceSession)
// into per-phase / per-rule breakdowns with latency percentiles, per-thread
// drop accounting, and optional Table 5 rule-impact attribution.
// See tools/trace_report_main.h for the full flag reference; the same
// command is also reachable as `optrouter trace-report`.
#include "trace_report_main.h"

int main(int argc, char** argv) {
  return optr::tools::traceReportMain(argc, argv);
}
