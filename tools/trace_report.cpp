// trace_report — aggregates an optr-trace JSONL file (written by
// `optrouter batch --trace=...` or any obs::TraceSession) into a per-phase
// and per-rule time-and-work breakdown, with anomaly flags.
//
//   trace_report <trace.jsonl>
//
// Output sections:
//   * phases   one row per span name: count, total time, self time (total
//              minus child spans, so self sums to ~wall once), share of the
//              session, and mean LP pivots for mip.node rows
//   * rules    one row per design rule, keyed from route.solve span details
//              ("clip|rule"): solves, time, summed B&B nodes and LP pivots
//   * coverage root-span time vs. the session wall clock (the acceptance
//              gate: instrumented spans must account for ~all of the wall)
//   * anomalies pivot-count outliers and dropped-record warnings
//
// Exit status: 0 on success, 1 when the trace cannot be parsed.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/trace_read.h"
#include "report/table.h"

using namespace optr;

namespace {

std::string fmtMs(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string fmtPct(std::int64_t part, std::int64_t whole) {
  if (whole <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_report <trace.jsonl>\n");
    return 2;
  }

  auto entriesOr = obs::loadTrace(argv[1]);
  if (!entriesOr) {
    std::fprintf(stderr, "%s\n", entriesOr.status().message().c_str());
    return 1;
  }
  obs::TraceReport rep = obs::analyzeTrace(entriesOr.value());

  std::printf("trace: %s  (%" PRId64 " spans, %" PRId64 " events, session %s ms)\n\n",
              argv[1], rep.spans, rep.events, fmtMs(rep.sessionNs).c_str());

  report::Table phases(
      {"phase", "count", "total ms", "self ms", "self %", "mean arg"});
  for (const obs::PhaseRow& p : rep.phases) {
    char meanBuf[32] = "-";
    if (p.meanArg > 0.0)
      std::snprintf(meanBuf, sizeof meanBuf, "%.1f", p.meanArg);
    phases.addRow({p.name, std::to_string(p.count), fmtMs(p.totalNs),
                   fmtMs(p.selfNs), fmtPct(p.selfNs, rep.sessionNs), meanBuf});
  }
  std::printf("%s\n", phases.render().c_str());

  if (!rep.rules.empty()) {
    report::Table rules({"rule", "solves", "total ms", "nodes", "pivots"});
    for (const obs::RuleRow& r : rep.rules) {
      char nodesBuf[32], pivotsBuf[32];
      std::snprintf(nodesBuf, sizeof nodesBuf, "%.0f", r.nodes);
      std::snprintf(pivotsBuf, sizeof pivotsBuf, "%.0f", r.pivots);
      rules.addRow({r.rule, std::to_string(r.solves), fmtMs(r.totalNs),
                    nodesBuf, pivotsBuf});
    }
    std::printf("%s\n", rules.render().c_str());
  }

  std::printf("coverage: root spans %s ms of %s ms session wall (%s)\n",
              fmtMs(rep.rootNs).c_str(), fmtMs(rep.sessionNs).c_str(),
              fmtPct(rep.rootNs, rep.sessionNs).c_str());
  if (rep.dropped > 0) {
    std::printf("dropped records: %" PRId64 "\n", rep.dropped);
  }

  if (!rep.anomalies.empty()) {
    std::printf("\nanomalies:\n");
    for (const std::string& a : rep.anomalies) {
      std::printf("  ! %s\n", a.c_str());
    }
  }
  return 0;
}
