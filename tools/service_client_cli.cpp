// service_client — command-line driver for the optrouter routing daemon.
//
// Talks the service protocol (src/service/service_protocol.h) to a daemon
// started with `optrouter serve --listen ...`:
//
//   service_client <address> route <clips> <rule> [index] [--time-limit S]
//       route one clip from a clips file through the daemon; prints the
//       result row (status, cost, cached flag, latency) and exits 0 on a
//       result, 3 on a typed reject (e.g. saturated), 1 on transport errors
//   service_client <address> sweep <clips> <rule...>
//       route every clip under every rule (the Figure 6 matrix) through the
//       daemon, one request per task, printing one row per result
//   service_client <address> ping
//       fetch the daemon's live stats frame: broker counters plus
//       request-lifecycle latency percentiles (queue-wait / session-lease /
//       solve cold-vs-hit / reply-write), computed from its in-process
//       histograms -- no log scraping
//   service_client <address> shutdown
//       ask the daemon to drain and exit
//
// <address> is the daemon's --listen spec: unix:/path.sock or host:port.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "clip/clip_io.h"
#include "service/service_client.h"
#include "tech/rules.h"

using namespace optr;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: service_client <address> <route|sweep|ping|shutdown> ...\n"
      "  <address>: unix:/path.sock or host:port (the daemon's --listen)\n"
      "  route <clips> <rule> [index=0] [--time-limit S]   one clip\n"
      "  sweep <clips> <rule...>                           clip x rule matrix\n"
      "  ping                                              live stats frame\n"
      "  shutdown                                          drain and stop\n");
  return 2;
}

void printReply(const service::RouteReply& r) {
  std::printf("%-10s %-12s cost=%-8.0f bound=%-8.0f %s %.3fs key=%s\n",
              core::toString(r.status), core::toString(r.provenance), r.cost,
              r.bestBound, r.cached ? "cached" : "solved", r.seconds,
              r.cacheKey.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string address = argv[1];
  std::string cmd = argv[2];

  service::ServiceClient client;
  Status st = client.connect(address);
  if (!st.isOk()) {
    std::fprintf(stderr, "service_client: %s\n", st.message().c_str());
    return 1;
  }

  if (cmd == "ping") {
    auto statsOr = client.ping();
    if (!statsOr.isOk()) {
      std::fprintf(stderr, "service_client: %s\n",
                   statsOr.status().message().c_str());
      return 1;
    }
    const service::ServiceStats& s = statsOr.value();
    std::printf("uptime %.1fs  pending %lld  accepted %lld  completed %lld  "
                "cacheHits %lld  saturated %lld\n",
                s.uptimeSec, static_cast<long long>(s.pending),
                static_cast<long long>(s.accepted),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.cacheHits),
                static_cast<long long>(s.rejectedSaturated));
    auto row = [](const char* name, const service::StatsQuad& q) {
      std::printf("%-11s count=%-6lld p50=%.3fms p95=%.3fms p99=%.3fms\n",
                  name, static_cast<long long>(q.count), q.p50Ms, q.p95Ms,
                  q.p99Ms);
    };
    row("queueWait", s.queueWait);
    row("lease", s.lease);
    row("solveCold", s.solveCold);
    row("solveHit", s.solveHit);
    row("replyWrite", s.replyWrite);
    return 0;
  }

  if (cmd == "shutdown") {
    Status sent = client.sendShutdown();
    if (!sent.isOk()) {
      std::fprintf(stderr, "service_client: %s\n", sent.message().c_str());
      return 1;
    }
    std::printf("shutdown requested\n");
    return 0;
  }

  if (cmd == "route") {
    if (argc < 5) return usage();
    auto clipsOr = clip::loadClips(argv[3]);
    if (!clipsOr.isOk()) {
      std::fprintf(stderr, "%s\n", clipsOr.status().message().c_str());
      return 1;
    }
    std::size_t index = 0;
    double timeLimit = 0.0;
    for (int a = 5; a < argc; ++a) {
      std::string arg = argv[a];
      if (arg == "--time-limit" && a + 1 < argc) {
        timeLimit = std::atof(argv[++a]);
      } else {
        index = static_cast<std::size_t>(std::atoi(argv[a]));
      }
    }
    if (index >= clipsOr.value().size()) {
      std::fprintf(stderr, "clip index %zu out of range (%zu clips)\n", index,
                   clipsOr.value().size());
      return 1;
    }
    service::RouteRequest req;
    req.id = "cli-0";
    req.clipText = clip::toText(clipsOr.value()[index]);
    req.ruleName = argv[4];
    req.timeLimitSec = timeLimit;
    auto replyOr = client.call(req);
    if (!replyOr.isOk()) {
      std::fprintf(stderr, "%s: %s\n", toString(replyOr.status().code()),
                   replyOr.status().message().c_str());
      return replyOr.status().code() == ErrorCode::kSaturated ? 3 : 1;
    }
    printReply(replyOr.value());
    return 0;
  }

  if (cmd == "sweep") {
    if (argc < 5) return usage();
    auto clipsOr = clip::loadClips(argv[3]);
    if (!clipsOr.isOk()) {
      std::fprintf(stderr, "%s\n", clipsOr.status().message().c_str());
      return 1;
    }
    std::vector<std::string> rules;
    for (int a = 4; a < argc; ++a) rules.push_back(argv[a]);
    int n = 0, rejects = 0;
    for (const clip::Clip& c : clipsOr.value()) {
      for (const std::string& rule : rules) {
        service::RouteRequest req;
        req.id = "cli-" + std::to_string(n++);
        req.clipText = clip::toText(c);
        req.ruleName = rule;
        auto replyOr = client.call(req);
        std::printf("%-12s %-8s ", c.id.c_str(), rule.c_str());
        if (!replyOr.isOk()) {
          ++rejects;
          std::printf("REJECT %s: %s\n", toString(replyOr.status().code()),
                      replyOr.status().message().c_str());
          if (replyOr.status().code() != ErrorCode::kSaturated) return 1;
          continue;
        }
        printReply(replyOr.value());
      }
    }
    return rejects > 0 ? 3 : 0;
  }

  return usage();
}
