// Unit tests for the routing graph: arc generation, unidirectional pruning,
// via instances / shapes, vertex ownership, and reverse-arc indexing.
#include "grid/routing_graph.h"

#include <gtest/gtest.h>

#include "test_clips.h"

namespace optr::grid {
namespace {

using clip::TrackPoint;
using testing::makeSimpleClip;

clip::Clip emptyClip(int x, int y, int z) {
  // One dummy net far in the corner so the clip validates.
  return makeSimpleClip(x, y, z, {{{0, 0, 0}, {1, 0, 0}}});
}

TEST(RoutingGraph, VertexIndexingRoundTrips) {
  auto c = emptyClip(5, 7, 3);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  EXPECT_EQ(g.numGridVertices(), 5 * 7 * 3);
  for (int z = 0; z < 3; ++z)
    for (int y = 0; y < 7; ++y)
      for (int x = 0; x < 5; ++x) {
        int v = g.vertexId(x, y, z);
        auto p = g.coords(v);
        EXPECT_EQ(p.x, x);
        EXPECT_EQ(p.y, y);
        EXPECT_EQ(p.z, z);
      }
}

TEST(RoutingGraph, UnidirectionalLayersDropOffAxisArcs) {
  auto c = emptyClip(4, 4, 2);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  // Layer 0 (M2) is horizontal: no planar arc may change y on layer 0.
  for (const Arc& a : g.arcs()) {
    if (a.kind != ArcKind::kPlanar) continue;
    auto pa = g.coords(a.from);
    auto pb = g.coords(a.to);
    if (pa.z == 0) EXPECT_EQ(pa.y, pb.y) << "vertical arc on horizontal M2";
    if (pa.z == 1) EXPECT_EQ(pa.x, pb.x) << "horizontal arc on vertical M3";
  }
}

TEST(RoutingGraph, BidirectionalModeKeepsBothAxes) {
  auto c = emptyClip(4, 4, 1);
  tech::RuleConfig rule;
  rule.unidirectional = false;
  RoutingGraph g(c, tech::Technology::n28_12t(), rule);
  int alongX = 0, alongY = 0;
  for (const Arc& a : g.arcs()) {
    if (a.kind != ArcKind::kPlanar) continue;
    auto pa = g.coords(a.from);
    auto pb = g.coords(a.to);
    if (pa.x != pb.x) ++alongX;
    if (pa.y != pb.y) ++alongY;
  }
  EXPECT_GT(alongX, 0);
  EXPECT_GT(alongY, 0);
}

TEST(RoutingGraph, PlanarArcCountMatchesFormula) {
  auto c = emptyClip(4, 5, 2);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  int planar = 0;
  for (const Arc& a : g.arcs())
    if (a.kind == ArcKind::kPlanar) ++planar;
  // Layer 0 horizontal: 5 rows x 3 segments x 2 dirs = 30.
  // Layer 1 vertical: 4 cols x 4 segments x 2 dirs = 32.
  EXPECT_EQ(planar, 30 + 32);
}

TEST(RoutingGraph, UnitViaInstancesCoverEverySite) {
  auto c = emptyClip(3, 4, 3);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  // 3*4 sites per cut layer, 2 cut layers.
  EXPECT_EQ(g.viaInstances().size(), 3u * 4 * 2);
  for (const ViaInstance& vi : g.viaInstances()) {
    EXPECT_EQ(vi.coveredLower.size(), 1u);
    EXPECT_EQ(vi.coveredUpper.size(), 1u);
    EXPECT_EQ(vi.arcs.size(), 2u);  // up + down
    EXPECT_EQ(vi.upVertex, -1);     // unit vias need no representative
  }
}

TEST(RoutingGraph, ViaArcCostMatchesWeight) {
  auto c = emptyClip(3, 3, 2);
  tech::RuleConfig rule;
  rule.viaCostWeight = 4.0;
  RoutingGraph g(c, tech::Technology::n28_12t(), rule);
  for (const Arc& a : g.arcs()) {
    if (a.kind == ArcKind::kVia) EXPECT_DOUBLE_EQ(a.cost, 4.0);
    if (a.kind == ArcKind::kPlanar) EXPECT_DOUBLE_EQ(a.cost, 1.0);
  }
}

TEST(RoutingGraph, ShapedViaCreatesRepresentativeVertices) {
  auto c = emptyClip(4, 4, 2);
  tech::RuleConfig rule;
  rule.viaShapes = {tech::unitVia(), tech::squareVia()};
  RoutingGraph g(c, tech::Technology::n28_12t(), rule);
  int shaped = 0;
  for (const ViaInstance& vi : g.viaInstances()) {
    if (vi.upVertex < 0) continue;
    ++shaped;
    EXPECT_EQ(vi.coveredLower.size(), 4u);
    EXPECT_EQ(vi.coveredUpper.size(), 4u);
    EXPECT_GE(vi.upVertex, g.numGridVertices());
    EXPECT_GE(vi.dnVertex, g.numGridVertices());
    // 4 lower enter + 4 lower exit + 4 upper exit + 4 upper enter.
    EXPECT_EQ(vi.arcs.size(), 16u);
  }
  // 2x2 placements on a 4x4 grid: 3x3 = 9 per cut layer, 1 cut layer.
  EXPECT_EQ(shaped, 9);
  // Paper Section 3.2 example: the via-shape cost is discounted.
  for (const Arc& a : g.arcs()) {
    if (a.kind == ArcKind::kViaEnter)
      EXPECT_DOUBLE_EQ(a.cost, 4.0 * 0.8);
    if (a.kind == ArcKind::kViaExit) EXPECT_DOUBLE_EQ(a.cost, 0.0);
  }
}

TEST(RoutingGraph, PaperViaShapeVertexCountExample) {
  // Paper Section 3.2: a 2x2 via on a 15x15x3 grid creates 392 = 14*14*2
  // placement instances.
  auto c = emptyClip(15, 15, 3);
  tech::RuleConfig rule;
  rule.viaShapes = {tech::squareVia()};
  RoutingGraph g(c, tech::Technology::n28_12t(), rule);
  EXPECT_EQ(g.viaInstances().size(), 392u);
}

TEST(RoutingGraph, ReverseArcIndexIsConsistent) {
  auto c = emptyClip(4, 4, 3);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  for (int a = 0; a < g.numArcs(); ++a) {
    int r = g.reverseArc(a);
    if (g.arc(a).kind == ArcKind::kPlanar || g.arc(a).kind == ArcKind::kVia) {
      ASSERT_GE(r, 0);
      EXPECT_EQ(g.arc(r).from, g.arc(a).to);
      EXPECT_EQ(g.arc(r).to, g.arc(a).from);
      EXPECT_EQ(g.reverseArc(r), a);
    } else {
      EXPECT_EQ(r, -1);
    }
  }
}

TEST(RoutingGraph, AdjacencyListsMatchArcs) {
  auto c = emptyClip(3, 3, 2);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  int sumOut = 0, sumIn = 0;
  for (int v = 0; v < g.numVertices(); ++v) {
    sumOut += static_cast<int>(g.outArcs(v).size());
    sumIn += static_cast<int>(g.inArcs(v).size());
    for (int a : g.outArcs(v)) EXPECT_EQ(g.arc(a).from, v);
    for (int a : g.inArcs(v)) EXPECT_EQ(g.arc(a).to, v);
  }
  EXPECT_EQ(sumOut, g.numArcs());
  EXPECT_EQ(sumIn, g.numArcs());
}

TEST(RoutingGraph, OwnershipFromPinsAndObstacles) {
  auto c = makeSimpleClip(5, 3, 2,
                          {{{0, 0, 0}, {4, 0, 0}}, {{2, 2, 0}, {2, 1, 0}}});
  c.obstacles.push_back({1, 1, 0});
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  EXPECT_EQ(g.vertexOwner(g.vertexId(0, 0, 0)), 0);
  EXPECT_EQ(g.vertexOwner(g.vertexId(2, 2, 0)), 1);
  EXPECT_EQ(g.vertexOwner(g.vertexId(1, 1, 0)), kVertexBlocked);
  EXPECT_EQ(g.vertexOwner(g.vertexId(3, 2, 0)), kVertexFree);
  EXPECT_TRUE(g.usableBy(g.vertexId(0, 0, 0), 0));
  EXPECT_FALSE(g.usableBy(g.vertexId(0, 0, 0), 1));
  EXPECT_FALSE(g.usableBy(g.vertexId(1, 1, 0), 0));
}

TEST(RoutingGraph, MetalNumbersStartAtM2) {
  auto c = emptyClip(3, 3, 3);
  RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  EXPECT_EQ(g.metalOf(0), 2);
  EXPECT_EQ(g.metalOf(2), 4);
}

// ---------------------------------------------------------------------------
// Union build + applyRule overlays (the rule-independent base of ClipSession:
// the graph is built once over a rule universe, each rule becomes a mask).

TEST(RoutingGraph, UnionBuildMasksOffAxisArcsPerRule) {
  auto c = emptyClip(4, 4, 2);
  tech::RuleConfig uni;  // default: unidirectional
  tech::RuleConfig bidi;
  bidi.name = "BIDI";
  bidi.unidirectional = false;
  RoutingGraph g(c, tech::Technology::n28_12t(),
                 std::vector<tech::RuleConfig>{uni, bidi});
  EXPECT_EQ(g.rule().name, uni.name);  // first universe rule starts active

  // The union graph physically contains off-preferred arcs (some rule wants
  // them), but under the unidirectional rule they must be masked off.
  int offAxis = 0, offAxisEnabled = 0;
  auto countOffAxis = [&] {
    offAxis = offAxisEnabled = 0;
    for (int a = 0; a < g.numArcs(); ++a) {
      const Arc& arc = g.arc(a);
      if (arc.kind != ArcKind::kPlanar) continue;
      auto pa = g.coords(arc.from);
      auto pb = g.coords(arc.to);
      bool horizontalMove = pa.y == pb.y;
      bool preferred =
          tech::Technology::n28_12t().layers[arc.layer].horizontal ==
          horizontalMove;
      if (preferred) {
        EXPECT_TRUE(g.arcEnabled(a));  // preferred arcs stay on everywhere
        continue;
      }
      ++offAxis;
      offAxisEnabled += g.arcEnabled(a) ? 1 : 0;
    }
  };
  countOffAxis();
  EXPECT_GT(offAxis, 0);
  EXPECT_EQ(offAxisEnabled, 0);

  g.applyRule(bidi);
  EXPECT_EQ(g.rule().name, "BIDI");
  countOffAxis();
  EXPECT_EQ(offAxisEnabled, offAxis);

  // And the overlay flips back cleanly.
  g.applyRule(uni);
  countOffAxis();
  EXPECT_EQ(offAxisEnabled, 0);
}

TEST(RoutingGraph, ApplyRuleSwitchesViaAvailabilityAndCost) {
  auto c = emptyClip(4, 4, 2);
  tech::RuleConfig unitOnly;
  unitOnly.name = "UNIT";
  unitOnly.viaShapes = {tech::unitVia()};
  unitOnly.viaCostWeight = 4.0;
  tech::RuleConfig squareOnly;
  squareOnly.name = "SQUARE";
  squareOnly.viaShapes = {tech::squareVia()};
  squareOnly.viaCostWeight = 2.0;
  RoutingGraph g(c, tech::Technology::n28_12t(),
                 std::vector<tech::RuleConfig>{unitOnly, squareOnly});
  // The union graph carries instances of both shapes.
  EXPECT_EQ(g.viaShapes().size(), 2u);

  auto checkActive = [&](bool wantUnit, double wantCost) {
    for (std::size_t i = 0; i < g.viaInstances().size(); ++i) {
      const ViaInstance& vi = g.viaInstances()[i];
      bool isUnit = g.viaShape(vi.shape).isUnit();
      EXPECT_EQ(g.viaInstanceEnabled(static_cast<int>(i)), isUnit == wantUnit);
      if (isUnit != wantUnit) continue;
      for (int a : vi.arcs) {
        const Arc& arc = g.arc(a);
        if (arc.kind == ArcKind::kVia || arc.kind == ArcKind::kViaEnter)
          EXPECT_DOUBLE_EQ(arc.cost, wantCost);
      }
    }
  };
  checkActive(/*wantUnit=*/true, 4.0 * 1.0);
  g.applyRule(squareOnly);
  checkActive(/*wantUnit=*/false, 2.0 * 0.8);  // squareVia costFactor = 0.8
  g.applyRule(unitOnly);
  checkActive(/*wantUnit=*/true, 4.0 * 1.0);
}

}  // namespace
}  // namespace optr::grid
