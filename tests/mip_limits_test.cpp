// Limit behaviour of the MIP solver: wall-clock deadlines (including a
// single over-budget LP), node limits, and bound reporting under truncation.
#include <gtest/gtest.h>

#include <chrono>

#include "common/rng.h"
#include "ilp/mip.h"

namespace optr::ilp {
namespace {

using lp::LpModel;
using lp::RowBuilder;
using lp::RowSense;

/// A deliberately nasty binary program: random dense rows, many symmetric
/// optima -- branch and bound churns.
LpModel hardModel(int n, std::uint64_t seed) {
  Rng rng(seed);
  LpModel m;
  for (int c = 0; c < n; ++c)
    m.addColumn(-1.0 - 0.001 * static_cast<double>(rng.uniform(10)), 0, 1);
  for (int r = 0; r < n; ++r) {
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (rng.chance(0.5)) rb.add(c, 1.0 + static_cast<double>(rng.uniform(3)));
    }
    rb.sense = RowSense::kLe;
    rb.rhs = static_cast<double>(2 + rng.uniform(4));
    m.addRow(rb);
  }
  return m;
}

TEST(MipLimits, TimeLimitIsRespectedWallClock) {
  LpModel m = hardModel(40, 3);
  MipOptions opt;
  opt.timeLimitSec = 1.0;
  MipSolver solver(m, std::vector<bool>(40, true), opt);
  auto t0 = std::chrono::steady_clock::now();
  auto r = solver.solve();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Generous envelope: a single LP iteration batch may overshoot slightly.
  EXPECT_LT(elapsed, 6.0);
  // A limit-terminated solve must say so (or have genuinely finished).
  if (elapsed >= 1.0) {
    EXPECT_TRUE(r.status == MipStatus::kFeasibleLimit ||
                r.status == MipStatus::kNoSolutionLimit ||
                r.status == MipStatus::kOptimal ||
                r.status == MipStatus::kInfeasible);
  }
}

TEST(MipLimits, NodeLimitTruncatesButBoundsStayValid) {
  LpModel m = hardModel(24, 9);
  MipOptions full, capped;
  capped.maxNodes = 3;
  full.timeLimitSec = capped.timeLimitSec = 60;
  MipSolver a(m, std::vector<bool>(24, true), full);
  auto rFull = a.solve();
  MipSolver b(m, std::vector<bool>(24, true), capped);
  auto rCapped = b.solve();
  if (rFull.status == MipStatus::kOptimal && rCapped.hasSolution()) {
    // Any truncated incumbent is an upper bound on the true optimum, and
    // the reported lower bound must bracket it.
    EXPECT_GE(rCapped.objective, rFull.objective - 1e-6);
    EXPECT_LE(rCapped.bestBound, rCapped.objective + 1e-6);
    EXPECT_LE(rFull.bestBound, rFull.objective + 1e-9);
  }
}

TEST(MipLimits, OptimalRunsReportTightBound) {
  LpModel m = hardModel(12, 21);
  MipSolver solver(m, std::vector<bool>(12, true));
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.bestBound, r.objective, 1e-9);
}

TEST(MipLimits, LpDeadlinePropagates) {
  // The MIP hands each LP its remaining wall clock; a tiny budget must not
  // hang even though the root LP alone would take longer.
  LpModel m = hardModel(60, 5);
  MipOptions opt;
  opt.timeLimitSec = 0.2;
  MipSolver solver(m, std::vector<bool>(60, true), opt);
  auto t0 = std::chrono::steady_clock::now();
  auto r = solver.solve();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);
  (void)r;
}

}  // namespace
}  // namespace optr::ilp
