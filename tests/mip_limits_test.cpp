// Limit behaviour of the MIP solver: wall-clock deadlines (including a
// single over-budget LP), node limits, bound reporting under truncation, and
// bound validity on every rung of the failure-recovery ladder.
#include <gtest/gtest.h>

#include <chrono>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "ilp/mip.h"

namespace optr::ilp {
namespace {

using lp::LpModel;
using lp::RowBuilder;
using lp::RowSense;

/// A deliberately nasty binary program: random dense rows, many symmetric
/// optima -- branch and bound churns.
LpModel hardModel(int n, std::uint64_t seed) {
  Rng rng(seed);
  LpModel m;
  for (int c = 0; c < n; ++c)
    m.addColumn(-1.0 - 0.001 * static_cast<double>(rng.uniform(10)), 0, 1);
  for (int r = 0; r < n; ++r) {
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (rng.chance(0.5)) rb.add(c, 1.0 + static_cast<double>(rng.uniform(3)));
    }
    rb.sense = RowSense::kLe;
    rb.rhs = static_cast<double>(2 + rng.uniform(4));
    m.addRow(rb);
  }
  return m;
}

TEST(MipLimits, TimeLimitIsRespectedWallClock) {
  LpModel m = hardModel(40, 3);
  MipOptions opt;
  opt.timeLimitSec = 1.0;
  MipSolver solver(m, std::vector<bool>(40, true), opt);
  auto t0 = std::chrono::steady_clock::now();
  auto r = solver.solve();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Generous envelope: a single LP iteration batch may overshoot slightly.
  EXPECT_LT(elapsed, 6.0);
  // A limit-terminated solve must say so (or have genuinely finished).
  if (elapsed >= 1.0) {
    EXPECT_TRUE(r.status == MipStatus::kFeasibleLimit ||
                r.status == MipStatus::kNoSolutionLimit ||
                r.status == MipStatus::kOptimal ||
                r.status == MipStatus::kInfeasible);
  }
}

TEST(MipLimits, NodeLimitTruncatesButBoundsStayValid) {
  LpModel m = hardModel(24, 9);
  MipOptions full, capped;
  capped.maxNodes = 3;
  full.timeLimitSec = capped.timeLimitSec = 60;
  MipSolver a(m, std::vector<bool>(24, true), full);
  auto rFull = a.solve();
  MipSolver b(m, std::vector<bool>(24, true), capped);
  auto rCapped = b.solve();
  if (rFull.status == MipStatus::kOptimal && rCapped.hasSolution()) {
    // Any truncated incumbent is an upper bound on the true optimum, and
    // the reported lower bound must bracket it.
    EXPECT_GE(rCapped.objective, rFull.objective - 1e-6);
    EXPECT_LE(rCapped.bestBound, rCapped.objective + 1e-6);
    EXPECT_LE(rFull.bestBound, rFull.objective + 1e-9);
  }
}

TEST(MipLimits, OptimalRunsReportTightBound) {
  LpModel m = hardModel(12, 21);
  MipSolver solver(m, std::vector<bool>(12, true));
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.bestBound, r.objective, 1e-9);
}

TEST(MipLimits, LpDeadlinePropagates) {
  // The MIP hands each LP its remaining wall clock; a tiny budget must not
  // hang even though the root LP alone would take longer.
  LpModel m = hardModel(60, 5);
  MipOptions opt;
  opt.timeLimitSec = 0.2;
  MipSolver solver(m, std::vector<bool>(60, true), opt);
  auto t0 = std::chrono::steady_clock::now();
  auto r = solver.solve();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);
  (void)r;
}

// --- Ladder rungs under injected faults: the bound must stay valid and the
// --- error code must name the actual failure on every degraded outcome.

TEST(MipLadder, SingleNumericalFailureIsRetriedToOptimal) {
  LpModel m = hardModel(12, 21);
  MipOptions clean;
  MipSolver a(m, std::vector<bool>(12, true), clean);
  auto rClean = a.solve();
  ASSERT_EQ(rClean.status, MipStatus::kOptimal);

  LpModel m2 = hardModel(12, 21);
  MipOptions opt;
  opt.lpOptions.refactorInterval = 4;  // make the probe reachable
  fault::ScopedFault f(fault::Site::kSingularBasis, 0, 1);
  MipSolver b(m2, std::vector<bool>(12, true), opt);
  auto r = b.solve();
  EXPECT_EQ(f.fired(), 1);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_EQ(r.numericRetries, 1);
  EXPECT_TRUE(r.error.isOk());
  EXPECT_NEAR(r.objective, rClean.objective, 1e-9);
  EXPECT_NEAR(r.bestBound, r.objective, 1e-9);
}

TEST(MipLadder, PersistentFailureKeepsIncumbentAndValidBound) {
  LpModel m = hardModel(20, 7);
  MipOptions opt;
  opt.lpOptions.refactorInterval = 4;
  MipSolver solver(m, std::vector<bool>(20, true), opt);
  // x = 0 satisfies every <= row and integrality: a legitimate incumbent.
  ASSERT_TRUE(solver.setInitialIncumbent(std::vector<double>(20, 0.0)));

  fault::ScopedFault f(fault::Site::kSingularBasis, 0, fault::kAlways);
  auto r = solver.solve();
  EXPECT_GE(f.fired(), 2);  // first attempt + the Bland-rule retry
  EXPECT_EQ(r.status, MipStatus::kError);
  EXPECT_EQ(r.error.code(), ErrorCode::kSingularBasis);
  EXPECT_EQ(r.numericRetries, 1);
  ASSERT_TRUE(r.hasIncumbent());
  EXPECT_NEAR(r.objective, 0.0, 1e-9);  // the seeded point survived
  // The reported lower bound must still bracket the incumbent.
  EXPECT_LE(r.bestBound, r.objective + 1e-6);
}

TEST(MipLadder, DeadlineFaultReportsDeadlineCode) {
  LpModel m = hardModel(24, 9);
  fault::ScopedFault f(fault::Site::kLpDeadline, 0, fault::kAlways);
  MipSolver solver(m, std::vector<bool>(24, true));
  auto r = solver.solve();
  EXPECT_GE(f.fired(), 1);
  EXPECT_EQ(r.status, MipStatus::kNoSolutionLimit);
  EXPECT_EQ(r.error.code(), ErrorCode::kDeadline);
  EXPECT_EQ(r.numericRetries, 0);  // a deadline is not retried
}

TEST(MipLadder, SeparatorOverReportIsCountedNotTrusted) {
  LpModel m = hardModel(12, 21);
  MipSolver clean(m, std::vector<bool>(12, true));
  auto rClean = clean.solve();
  ASSERT_EQ(rClean.status, MipStatus::kOptimal);

  LpModel m2 = hardModel(12, 21);
  MipSolver solver(m2, std::vector<bool>(12, true));
  // Honest no-op separator; the fault makes its *report* lie. The solver
  // must trust the observed model delta: same optimum, misreports counted.
  solver.setLazySeparator(
      [](const std::vector<double>&, LpModel&) { return 0; });
  fault::ScopedFault f(fault::Site::kSeparatorOverReport, 0, fault::kAlways);
  auto r = solver.solve();
  EXPECT_GE(f.fired(), 1);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_GE(r.separatorMisreports, 1);
  EXPECT_NEAR(r.objective, rClean.objective, 1e-9);
  EXPECT_EQ(r.lazyRowsAdded, 0);
}

TEST(MipLadder, BadIntegralityMaskIsAnErrorNotAnAbort) {
  LpModel m = hardModel(8, 2);
  MipSolver solver(m, std::vector<bool>(5, true));  // wrong size
  auto r = solver.solve();
  EXPECT_EQ(r.status, MipStatus::kError);
  EXPECT_EQ(r.error.code(), ErrorCode::kInvalidInput);
  EXPECT_FALSE(r.hasIncumbent());
}

}  // namespace
}  // namespace optr::ilp
