// Attribution engine: the paper's Table 5 joined from route.solve spans.
//
// The synthetic cases pin the join arithmetic exactly (known wirelength /
// via / runtime inputs produce known deltas); the fleet case proves traces
// from independent worker files -- with colliding span ids -- merge into the
// same report; the end-to-end case runs a real traced batch and proves the
// trace join is byte-for-byte lossless against the checkpoint JSONL.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "harness/batch_runner.h"
#include "obs/analyze.h"
#include "obs/trace.h"
#include "obs/trace_read.h"
#include "report/attribution.h"
#include "test_clips.h"

namespace optr::report {
namespace {

using clip::TrackPoint;

std::string tempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid());
}

/// A v2 route.solve span carrying the full join envelope.
obs::TraceEntry solveSpan(const std::string& clip, const std::string& rule,
                          const std::string& tech, const std::string& status,
                          double cost, double wl, double vias,
                          std::int64_t durNs) {
  obs::TraceEntry e;
  e.type = "span";
  e.name = "route.solve";
  e.dur = durNs;
  e.attrs = {{"clip", clip}, {"rule", rule}, {"tech", tech},
             {"status", status}, {"provenance", "ilp-proven"}};
  if (status == "optimal" || status == "feasible") {
    e.args = {{"cost", cost}, {"wl", wl}, {"vias", vias}};
  }
  return e;
}

TEST(Attribution, TwoRuleJoinComputesExactDeltas) {
  // Baseline RULE1: wl 10+20, vias 2+2, 1000ns each.
  // RULE3: wl 11+22 (+10%), vias 3+2 (+1), 1500+2500ns (+100%).
  std::vector<obs::TraceEntry> es = {
      solveSpan("clipA", "RULE1", "N7", "optimal", 12, 10, 2, 1000),
      solveSpan("clipB", "RULE1", "N7", "optimal", 22, 20, 2, 1000),
      solveSpan("clipA", "RULE3", "N7", "optimal", 14, 11, 3, 1500),
      solveSpan("clipB", "RULE3", "N7", "optimal", 24, 22, 2, 2500),
  };
  AttributionReport rep = attributeRules(es);
  EXPECT_EQ(rep.baselineRule, "RULE1");
  EXPECT_EQ(rep.tasks.size(), 4u);
  EXPECT_TRUE(rep.notes.empty());
  ASSERT_EQ(rep.rows.size(), 2u);

  // Rules keep first-seen trace order: RULE1 (the baseline row) first.
  const AttributionRow& base = rep.rows[0];
  EXPECT_EQ(base.rule, "RULE1");
  EXPECT_EQ(base.tech, "N7");
  EXPECT_EQ(base.clips, 2);
  EXPECT_EQ(base.solved, 2);
  EXPECT_DOUBLE_EQ(base.dWlPct, 0.0);
  EXPECT_DOUBLE_EQ(base.dVias, 0.0);
  EXPECT_DOUBLE_EQ(base.dRuntimePct, 0.0);

  const AttributionRow& r3 = rep.rows[1];
  EXPECT_EQ(r3.rule, "RULE3");
  EXPECT_EQ(r3.clips, 2);
  EXPECT_EQ(r3.solved, 2);
  EXPECT_EQ(r3.infeasible, 0);
  EXPECT_DOUBLE_EQ(r3.wl, 33.0);
  EXPECT_DOUBLE_EQ(r3.baseWl, 30.0);
  EXPECT_DOUBLE_EQ(r3.dWlPct, 10.0);       // (33-30)/30
  EXPECT_DOUBLE_EQ(r3.dVias, 1.0);         // 5-4
  EXPECT_DOUBLE_EQ(r3.dCostPct, 100.0 * (38.0 - 34.0) / 34.0);
  EXPECT_DOUBLE_EQ(r3.dRuntimePct, 100.0); // 4000 vs 2000 ns
}

TEST(Attribution, InfeasibleAndUnresolvedJoinWithoutSkewingAverages) {
  std::vector<obs::TraceEntry> es = {
      solveSpan("clipA", "RULE1", "N7", "optimal", 10, 8, 1, 100),
      solveSpan("clipB", "RULE1", "N7", "optimal", 10, 8, 1, 100),
      solveSpan("clipC", "RULE1", "N7", "unknown", 0, 0, 0, 100),
      solveSpan("clipA", "RULE6", "N7", "infeasible", 0, 0, 0, 300),
      solveSpan("clipB", "RULE6", "N7", "optimal", 12, 9, 2, 200),
      // clipC has no solved baseline: excluded from the RULE6 join entirely.
      solveSpan("clipC", "RULE6", "N7", "optimal", 11, 9, 1, 100),
  };
  AttributionReport rep = attributeRules(es);
  ASSERT_EQ(rep.rows.size(), 2u);
  const AttributionRow& r6 = rep.rows[1];
  EXPECT_EQ(r6.rule, "RULE6");
  EXPECT_EQ(r6.clips, 2);       // clipA + clipB; clipC had no baseline
  EXPECT_EQ(r6.solved, 1);
  EXPECT_EQ(r6.infeasible, 1);
  EXPECT_EQ(r6.unresolved, 0);
  // Wirelength delta uses only the solved pair (clipB): 9 vs 8.
  EXPECT_DOUBLE_EQ(r6.dWlPct, 100.0 * (9.0 - 8.0) / 8.0);
  // Runtime covers all joined clips: 500 vs 200.
  EXPECT_DOUBLE_EQ(r6.dRuntimePct, 100.0 * (500.0 - 200.0) / 200.0);
}

TEST(Attribution, DuplicateSpansKeepFirstAndNote) {
  std::vector<obs::TraceEntry> es = {
      solveSpan("clipA", "RULE1", "N7", "optimal", 10, 8, 1, 100),
      // Re-solve after a lease reassignment: same outcome, ignored quietly.
      solveSpan("clipA", "RULE1", "N7", "optimal", 10, 8, 1, 150),
      // Divergent re-solve: ignored, but loudly.
      solveSpan("clipA", "RULE1", "N7", "feasible", 11, 9, 1, 150),
  };
  AttributionReport rep = attributeRules(es);
  ASSERT_EQ(rep.tasks.size(), 1u);
  EXPECT_EQ(rep.tasks[0].status, "optimal");
  EXPECT_DOUBLE_EQ(rep.tasks[0].cost, 10.0);
  ASSERT_EQ(rep.notes.size(), 2u);
  EXPECT_NE(rep.notes[0].find("divergent re-solve"), std::string::npos);
  EXPECT_NE(rep.notes[1].find("2 duplicate"), std::string::npos);
  EXPECT_NE(rep.notes[1].find("1 divergent"), std::string::npos);
}

TEST(Attribution, MissingBaselineRuleIsNoted) {
  std::vector<obs::TraceEntry> es = {
      solveSpan("clipA", "RULE6", "N7", "optimal", 10, 8, 1, 100),
  };
  AttributionOptions opt;
  opt.baselineRule = "RULE1";
  AttributionReport rep = attributeRules(es, opt);
  ASSERT_EQ(rep.notes.size(), 1u);
  EXPECT_NE(rep.notes[0].find("baseline rule RULE1 has no tasks"),
            std::string::npos);
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_EQ(rep.rows[0].clips, 0);  // nothing joined
}

TEST(Attribution, V1TraceFallsBackToDetailSplit) {
  obs::TraceEntry e;
  e.type = "span";
  e.name = "route.solve";
  e.detail = "clipA|RULE1";
  e.dur = 100;
  e.args = {{"cost", 10.0}};
  std::vector<obs::TraceEntry> es = {e};
  AttributionReport rep = attributeRules(es);
  ASSERT_EQ(rep.tasks.size(), 1u);
  EXPECT_EQ(rep.tasks[0].clip, "clipA");
  EXPECT_EQ(rep.tasks[0].rule, "RULE1");
  EXPECT_TRUE(rep.tasks[0].status.empty());  // v1 spans carry no status
  ASSERT_GE(rep.notes.size(), 1u);
  EXPECT_NE(rep.notes[0].find("v1 trace spans"), std::string::npos);
}

TEST(Attribution, MergedFleetTracesJoinAcrossWorkerFiles) {
  // Two workers, separate files, deliberately colliding span ids. Worker 0
  // solved the RULE1 half of the matrix, worker 1 the RULE3 half.
  const std::string f0 = tempPath("attr_w0.jsonl");
  const std::string f1 = tempPath("attr_w1.jsonl");
  std::ofstream(f0)
      << "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":2}\n"
      << "{\"t\":\"span\",\"name\":\"route.solve\",\"tid\":0,\"ts\":0,"
         "\"id\":1,\"dur\":1000,\"attrs\":{\"clip\":\"clipA\",\"rule\":"
         "\"RULE1\",\"tech\":\"N7\",\"status\":\"optimal\"},"
         "\"args\":{\"cost\":12,\"wl\":10,\"vias\":2}}\n"
      << "{\"t\":\"span\",\"name\":\"route.solve\",\"tid\":0,\"ts\":1000,"
         "\"id\":2,\"dur\":1000,\"attrs\":{\"clip\":\"clipB\",\"rule\":"
         "\"RULE1\",\"tech\":\"N7\",\"status\":\"optimal\"},"
         "\"args\":{\"cost\":22,\"wl\":20,\"vias\":2}}\n"
      << "{\"t\":\"meta\",\"end\":true,\"durNs\":2000,\"dropped\":0}\n";
  std::ofstream(f1)
      << "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":2}\n"
      << "{\"t\":\"span\",\"name\":\"route.solve\",\"tid\":0,\"ts\":0,"
         "\"id\":1,\"dur\":1500,\"attrs\":{\"clip\":\"clipA\",\"rule\":"
         "\"RULE3\",\"tech\":\"N7\",\"status\":\"optimal\"},"
         "\"args\":{\"cost\":14,\"wl\":11,\"vias\":3}}\n"
      << "{\"t\":\"span\",\"name\":\"route.solve\",\"tid\":0,\"ts\":1500,"
         "\"id\":2,\"dur\":2500,\"attrs\":{\"clip\":\"clipB\",\"rule\":"
         "\"RULE3\",\"tech\":\"N7\",\"status\":\"optimal\"},"
         "\"args\":{\"cost\":24,\"wl\":22,\"vias\":2}}\n"
      << "{\"t\":\"meta\",\"end\":true,\"durNs\":4000,\"dropped\":0}\n";

  auto mergedOr = obs::loadTraces({f0, f1});
  ASSERT_TRUE(mergedOr.isOk()) << mergedOr.status().message();
  AttributionReport rep = attributeRules(mergedOr.value());
  EXPECT_EQ(rep.tasks.size(), 4u);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.rows[1].dWlPct, 10.0);
  EXPECT_DOUBLE_EQ(rep.rows[1].dVias, 1.0);
  EXPECT_DOUBLE_EQ(rep.rows[1].dRuntimePct, 100.0);

  // The rendered table carries the rule x tech cells and the deltas.
  std::string text = renderAttributionText(rep);
  EXPECT_NE(text.find("RULE3"), std::string::npos);
  EXPECT_NE(text.find("+10.00"), std::string::npos);
  EXPECT_NE(text.find("ref"), std::string::npos);
  std::string json = attributionToJson(rep);
  EXPECT_NE(json.find("\"report\":\"table5\""), std::string::npos);
  EXPECT_NE(json.find("\"dWlPct\":10"), std::string::npos);

  std::remove(f0.c_str());
  std::remove(f1.c_str());
}

// --- End to end: a real traced batch, verified against its checkpoint -------

TEST(Attribution, TracedBatchJoinIsLosslessAgainstCheckpoint) {
  const std::string trace = tempPath("attr_e2e_trace.jsonl");
  const std::string ckpt = tempPath("attr_e2e_ckpt.jsonl");

  clip::Clip a = testing::makeSimpleClip(
      4, 4, 2, {{TrackPoint{0, 0, 0}, TrackPoint{3, 3, 0}}});
  a.id = "clipA";
  clip::Clip b = testing::makeSimpleClip(
      4, 4, 2,
      {{TrackPoint{0, 0, 0}, TrackPoint{3, 0, 0}},
       {TrackPoint{0, 2, 0}, TrackPoint{3, 2, 0}}});
  b.id = "clipB";
  std::vector<tech::RuleConfig> rules = {tech::ruleByName("RULE1").value(),
                                         tech::ruleByName("RULE3").value()};

  harness::BatchOptions opt;
  opt.router.mip.timeLimitSec = 20.0;
  opt.isolateTasks = false;
  opt.checkpointPath = ckpt;
  ASSERT_TRUE(obs::TraceSession::start(trace).isOk());
  harness::BatchReport report = harness::BatchRunner(opt).run({a, b}, rules);
  obs::TraceSession::stop();
  ASSERT_EQ(report.rows.size(), 4u);

  auto entriesOr = obs::loadTrace(trace);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  AttributionReport rep = attributeRules(entriesOr.value());
  EXPECT_EQ(rep.tasks.size(), 4u);

  // Every checkpoint row appears in the trace with byte-identical
  // cost/wirelength/vias and matching status -- and vice versa.
  auto mismatchesOr = verifyJoin(rep, ckpt);
  ASSERT_TRUE(mismatchesOr.isOk()) << mismatchesOr.status().message();
  for (const std::string& m : mismatchesOr.value()) ADD_FAILURE() << m;

  // Tamper check: perturbing one traced cost must surface as a mismatch.
  AttributionReport broken = rep;
  ASSERT_FALSE(broken.tasks.empty());
  broken.tasks[0].cost += 1.0;
  auto brokenOr = verifyJoin(broken, ckpt);
  ASSERT_TRUE(brokenOr.isOk());
  EXPECT_FALSE(brokenOr.value().empty());

  std::remove(trace.c_str());
  std::remove(ckpt.c_str());
}

TEST(Attribution, VerifyJoinFlagsMissingTasksBothWays) {
  const std::string ckpt = tempPath("attr_vj.jsonl");
  std::ofstream(ckpt)
      << "{\"clip\":\"clipA\",\"rule\":\"RULE1\",\"status\":\"optimal\","
         "\"cost\":10,\"wirelength\":8,\"vias\":1}\n"
      << "{\"clip\":\"clipB\",\"rule\":\"RULE1\",\"status\":\"optimal\","
         "\"cost\":20,\"wirelength\":16,\"vias\":2}\n";
  std::vector<obs::TraceEntry> es = {
      solveSpan("clipA", "RULE1", "N7", "optimal", 10, 8, 1, 100),
      solveSpan("clipC", "RULE1", "N7", "optimal", 30, 24, 3, 100),
  };
  AttributionReport rep = attributeRules(es);
  auto mismatchesOr = verifyJoin(rep, ckpt);
  ASSERT_TRUE(mismatchesOr.isOk());
  ASSERT_EQ(mismatchesOr.value().size(), 2u);
  EXPECT_NE(mismatchesOr.value()[0].find("clipB|RULE1 missing from trace"),
            std::string::npos);
  EXPECT_NE(mismatchesOr.value()[1].find("clipC|RULE1 missing from checkpoint"),
            std::string::npos);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace optr::report
