// Service-layer unit tests: content-addressed cache keys, the ResultCache
// and SessionPool LRUs (including the capacity-0/1 degenerate modes and a
// concurrency leg the TSan build exercises), the wire protocol roundtrip,
// and RequestBroker admission control -- saturation and shutdown rejects are
// driven deterministically by stalling the single worker inside the test's
// own sink (the broker never holds its lock across a sink call, so a
// blocking sink freezes the pipeline without deadlocking submit()).
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "clip/clip_io.h"
#include "core/cache_key.h"
#include "core/session_pool.h"
#include "obs/metrics.h"  // OPTR_OBS_ENABLED gates the percentile asserts
#include "service/request_broker.h"
#include "service/result_cache.h"
#include "service/service_protocol.h"
#include "tech/rules.h"
#include "tech/technology.h"
#include "test_clips.h"

namespace optr {
namespace {

using testing::makeSimpleClip;

clip::Clip tinyClip() {
  // One two-pin net on a 4x4x3 clip: solves in milliseconds.
  return makeSimpleClip(4, 4, 3, {{{0, 0, 0}, {3, 3, 0}}});
}

tech::RuleConfig ruleByName(const std::string& name) {
  for (const tech::RuleConfig& r : tech::table3Rules())
    if (r.name == name) return r;
  ADD_FAILURE() << "no such rule: " << name;
  return {};
}

// ---- cache keys ----------------------------------------------------------

TEST(CacheKey, ClipIdDoesNotChangeTheKeyButGeometryDoes) {
  core::OptRouterOptions opt;
  tech::RuleConfig rule = ruleByName("RULE1");
  clip::Clip a = tinyClip();
  clip::Clip b = tinyClip();
  b.id = "completely-different-name";
  EXPECT_EQ(core::resultCacheKey(a, rule, opt).hex(),
            core::resultCacheKey(b, rule, opt).hex())
      << "content addressing must ignore the clip's display name";

  clip::Clip c = makeSimpleClip(4, 4, 3, {{{0, 0, 0}, {3, 2, 0}}});
  EXPECT_NE(core::resultCacheKey(a, rule, opt).hex(),
            core::resultCacheKey(c, rule, opt).hex());
}

TEST(CacheKey, RuleAndSolverOptionsArePartOfTheKey) {
  core::OptRouterOptions opt;
  clip::Clip a = tinyClip();
  EXPECT_NE(core::resultCacheKey(a, ruleByName("RULE1"), opt).hex(),
            core::resultCacheKey(a, ruleByName("RULE3"), opt).hex());

  core::OptRouterOptions limited = opt;
  limited.mip.timeLimitSec = opt.mip.timeLimitSec + 1;
  EXPECT_NE(core::resultCacheKey(a, ruleByName("RULE1"), opt).hex(),
            core::resultCacheKey(a, ruleByName("RULE1"), limited).hex())
      << "a truncated-budget solve must not alias an unlimited one";
}

TEST(CacheKey, SessionKeyIgnoresRuleAndMipOptions) {
  // Sessions are rule-agnostic (rules are overlays), so the session key
  // hashes only the clip and the formulation shape.
  clip::Clip a = tinyClip();
  core::OptRouterOptions x;
  core::OptRouterOptions y;
  y.mip.timeLimitSec = 999;
  y.mip.threads = 7;
  EXPECT_EQ(core::sessionCacheKey(a, x.formulation).hex(),
            core::sessionCacheKey(a, y.formulation).hex());
  core::FormulationOptions wider = x.formulation;
  wider.netBBoxMargin = x.formulation.netBBoxMargin + 2;
  EXPECT_NE(core::sessionCacheKey(a, x.formulation).hex(),
            core::sessionCacheKey(a, wider).hex());
}

TEST(CacheKey, CacheableOutcomeAdmitsOnlyCleanProvenResults) {
  Status ok;
  EXPECT_TRUE(core::cacheableOutcome(core::RouteStatus::kOptimal, ok));
  EXPECT_TRUE(core::cacheableOutcome(core::RouteStatus::kInfeasible, ok));
  EXPECT_FALSE(core::cacheableOutcome(core::RouteStatus::kFeasible, ok))
      << "deadline-truncated incumbents are wall-clock functions";
  EXPECT_FALSE(core::cacheableOutcome(core::RouteStatus::kUnknown, ok));
  EXPECT_FALSE(core::cacheableOutcome(
      core::RouteStatus::kOptimal,
      Status::error(ErrorCode::kInternal, "solver stack misbehaved")));
}

// ---- ResultCache ---------------------------------------------------------

service::CachedResult entryWithCost(double cost) {
  service::CachedResult e;
  e.status = core::RouteStatus::kOptimal;
  e.provenance = core::Provenance::kIlpProven;
  e.cost = cost;
  return e;
}

core::CacheKey keyOf(int i) {
  core::CacheKey k;
  k.hi = 0x1000 + static_cast<std::uint64_t>(i);
  k.lo = 0x2000 + static_cast<std::uint64_t>(i);
  return k;
}

TEST(ResultCache, EvictsLeastRecentlyUsedAndRefreshesOnFind) {
  service::ResultCache cache({/*capacity=*/2});
  EXPECT_TRUE(cache.insert(keyOf(1), entryWithCost(1)));
  EXPECT_TRUE(cache.insert(keyOf(2), entryWithCost(2)));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.find(keyOf(1)).has_value());
  EXPECT_TRUE(cache.insert(keyOf(3), entryWithCost(3)));
  EXPECT_TRUE(cache.find(keyOf(1)).has_value());
  EXPECT_FALSE(cache.find(keyOf(2)).has_value()) << "2 was LRU, must evict";
  EXPECT_TRUE(cache.find(keyOf(3)).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, FirstWriterWinsAndCapacityZeroDisables) {
  service::ResultCache cache({/*capacity=*/4});
  EXPECT_TRUE(cache.insert(keyOf(1), entryWithCost(10)));
  EXPECT_FALSE(cache.insert(keyOf(1), entryWithCost(20)))
      << "a duplicate insert must not clobber the original entry";
  EXPECT_EQ(cache.find(keyOf(1))->cost, 10.0);

  service::ResultCache off({/*capacity=*/0});
  EXPECT_FALSE(off.insert(keyOf(1), entryWithCost(1)));
  EXPECT_FALSE(off.find(keyOf(1)).has_value());
  EXPECT_EQ(off.size(), 0u);
}

// ---- SessionPool ---------------------------------------------------------

std::unique_ptr<core::ClipSession> buildTinySession(const clip::Clip& c) {
  core::ClipSessionOptions so;
  so.universe = tech::table3Rules();
  return std::make_unique<core::ClipSession>(
      c, tech::Technology::n28_12t(), std::move(so));
}

TEST(SessionPool, CapacityZeroBuildsAndDiscardsEveryTime) {
  core::SessionPool pool({/*capacity=*/0});
  clip::Clip c = tinyClip();
  int builds = 0;
  for (int i = 0; i < 3; ++i) {
    auto lease = pool.acquire("k", [&] {
      ++builds;
      return buildTinySession(c);
    });
    EXPECT_TRUE(static_cast<bool>(lease));
  }
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().discards, 3u);
}

TEST(SessionPool, CapacityOneHitsOnReuseAndEvictsTheOtherKey) {
  core::SessionPool pool({/*capacity=*/1});
  clip::Clip c = tinyClip();
  int builds = 0;
  auto build = [&] {
    ++builds;
    return buildTinySession(c);
  };
  { auto lease = pool.acquire("a", build); }  // miss, released -> pooled
  { auto lease = pool.acquire("a", build); }  // hit
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(pool.stats().hits, 1u);
  { auto lease = pool.acquire("b", build); }  // miss; release evicts "a"
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);
  { auto lease = pool.acquire("a", build); }  // "a" was evicted: rebuild
  EXPECT_EQ(builds, 3);
}

TEST(SessionPool, DuplicateReleaseKeepsOneAndDiscardIsHonored) {
  core::SessionPool pool({/*capacity=*/4});
  clip::Clip c = tinyClip();
  auto build = [&] { return buildTinySession(c); };
  {
    // Two concurrent leases of the same key: second acquire must build its
    // own (sessions are exclusive), and only one survives the releases.
    auto first = pool.acquire("k", build);
    auto second = pool.acquire("k", build);
    EXPECT_NE(first.get(), second.get());
  }
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().discards, 1u);

  {
    auto lease = pool.acquire("k", build);
    lease.discard();  // solver error path: do not repool
  }
  EXPECT_EQ(pool.size(), 0u);
}

TEST(SessionPool, ConcurrentAcquireReleaseIsRaceFree) {
  // Hammered by the TSan leg of run_sanitized_tests.sh: 4 threads churning
  // 2 keys through a capacity-1 pool exercises hit/build/evict/duplicate
  // paths under contention.
  core::SessionPool pool({/*capacity=*/1});
  clip::Clip c = tinyClip();
  std::atomic<int> built{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        std::string key = (i + t) % 2 == 0 ? "even" : "odd";
        auto lease = pool.acquire(key, [&] {
          built.fetch_add(1);
          return buildTinySession(c);
        });
        ASSERT_TRUE(static_cast<bool>(lease));
        if (i % 4 == 3) lease.discard();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  core::SessionPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, 32u);
  EXPECT_EQ(static_cast<int>(s.misses), built.load());
  EXPECT_LE(pool.size(), 1u);
}

// ---- wire protocol -------------------------------------------------------

TEST(ServiceProtocol, ResultFrameRoundTripsBitExactDoubles) {
  service::RouteReply r;
  r.id = "req-7";
  r.status = core::RouteStatus::kOptimal;
  r.provenance = core::Provenance::kIlpProven;
  r.cost = 0.1 + 0.2;  // not representable: %.17g must preserve the bits
  r.bestBound = 0.30000000000000004;
  r.wirelength = 12;
  r.vias = 3;
  r.seconds = 0.125;
  r.nodes = 42;
  r.lpIterations = 1234;
  r.cached = true;
  r.cacheKey = "0123456789abcdef0123456789abcdef";
  r.solutionText = "SOL v1\nnet n0\n";
  service::ServiceFrame f = service::decodeFrame(service::encodeResult(r));
  ASSERT_EQ(f.type, service::FrameType::kResult);
  EXPECT_EQ(f.reply.id, r.id);
  EXPECT_EQ(f.reply.status, r.status);
  EXPECT_EQ(f.reply.provenance, r.provenance);
  EXPECT_EQ(f.reply.cost, r.cost);
  EXPECT_EQ(f.reply.bestBound, r.bestBound);
  EXPECT_EQ(f.reply.solutionText, r.solutionText);
  EXPECT_TRUE(f.reply.cached);
  EXPECT_EQ(service::replyEquivalenceSignature(f.reply),
            service::replyEquivalenceSignature(r));
}

TEST(ServiceProtocol, EquivalenceSignatureIgnoresServingMetadata) {
  service::RouteReply a;
  a.id = "a";
  a.cost = 7;
  a.seconds = 3.5;
  a.cached = false;
  service::RouteReply b = a;
  b.id = "b";
  b.seconds = 0.001;
  b.cached = true;
  EXPECT_EQ(service::replyEquivalenceSignature(a),
            service::replyEquivalenceSignature(b));
  b.cost = 8;
  EXPECT_NE(service::replyEquivalenceSignature(a),
            service::replyEquivalenceSignature(b));
}

TEST(ServiceProtocol, GarbledAndTruncatedLinesNeverDecodeAsFrames) {
  EXPECT_EQ(service::decodeFrame("").type, service::FrameType::kGarbled);
  EXPECT_EQ(service::decodeFrame("not json").type,
            service::FrameType::kGarbled);
  EXPECT_EQ(service::decodeFrame("{\"t\":\"nonsense\"}").type,
            service::FrameType::kGarbled);
  // A result line cut mid-write must not decode as an empty routing.
  service::RouteReply r;
  r.id = "x";
  r.cacheKey = "00000000000000000000000000000000";
  std::string full = service::encodeResult(r);
  EXPECT_EQ(service::decodeFrame(full.substr(0, full.size() / 2)).type,
            service::FrameType::kGarbled);
}

TEST(ServiceProtocol, RouteAndRejectRoundTrip) {
  service::RouteRequest req;
  req.id = "r1";
  req.clipText = clip::toText(tinyClip());
  req.ruleName = "RULE4";
  req.timeLimitSec = 2.5;
  service::ServiceFrame f = service::decodeFrame(service::encodeRoute(req));
  ASSERT_EQ(f.type, service::FrameType::kRoute);
  EXPECT_EQ(f.request.clipText, req.clipText);
  EXPECT_EQ(f.request.ruleName, "RULE4");
  EXPECT_EQ(f.request.timeLimitSec, 2.5);

  service::ServiceFrame rej = service::decodeFrame(
      service::encodeReject("r1", ErrorCode::kSaturated, "queue full"));
  ASSERT_EQ(rej.type, service::FrameType::kReject);
  EXPECT_EQ(rej.id, "r1");
  EXPECT_EQ(rej.errorCode, ErrorCode::kSaturated);
}

// ---- RequestBroker -------------------------------------------------------

/// Sink that records every frame and can hold the worker hostage: when
/// `stallOnRunning` is set, the worker thread blocks inside its "running"
/// status emission until release() -- queue states become deterministic.
struct TestSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<service::ServiceFrame> frames;
  bool stallOnRunning = false;
  bool stalled = false;
  bool released = false;

  void operator()(const std::string&, const std::string& line) {
    service::ServiceFrame f = service::decodeFrame(line);
    std::unique_lock<std::mutex> lock(mu);
    frames.push_back(f);
    cv.notify_all();
    if (stallOnRunning && f.type == service::FrameType::kStatus &&
        f.state == "running") {
      stalled = true;
      cv.notify_all();
      cv.wait(lock, [&] { return released; });
    }
  }

  void waitStalled() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stalled; });
  }

  void release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }

  int count(service::FrameType t, ErrorCode code = ErrorCode::kOk) {
    std::lock_guard<std::mutex> lock(mu);
    int n = 0;
    for (const service::ServiceFrame& f : frames)
      if (f.type == t &&
          (t != service::FrameType::kReject || f.errorCode == code))
        ++n;
    return n;
  }

  void waitResults(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      int got = 0;
      for (const service::ServiceFrame& f : frames)
        if (f.type == service::FrameType::kResult) ++got;
      return got >= n;
    });
  }
};

service::RouteRequest tinyRequest(const std::string& id) {
  service::RouteRequest req;
  req.id = id;
  req.clipText = clip::toText(tinyClip());
  req.ruleName = "RULE1";
  return req;
}

service::BrokerOptions tinyBroker() {
  service::BrokerOptions bo;
  bo.workers = 1;
  bo.router.mip.timeLimitSec = 10;
  bo.router.mip.threads = 1;
  return bo;
}

TEST(RequestBroker, SaturationRejectsAreTypedAndDeterministic) {
  auto sink = std::make_shared<TestSink>();
  sink->stallOnRunning = true;
  service::BrokerOptions bo = tinyBroker();
  bo.queueDepth = 1;
  bo.clientQueueDepth = 8;
  service::RequestBroker broker(
      bo, [sink](const std::string& c, const std::string& l) {
        (*sink)(c, l);
      });
  EXPECT_TRUE(broker.submit("a", tinyRequest("r0")));
  sink->waitStalled();  // r0 in flight, queue empty
  EXPECT_TRUE(broker.submit("a", tinyRequest("r1")));   // fills queue 1/1
  EXPECT_FALSE(broker.submit("a", tinyRequest("r2")));  // global cap
  EXPECT_FALSE(broker.submit("b", tinyRequest("r3")))
      << "global saturation must reject other clients too";
  EXPECT_EQ(
      sink->count(service::FrameType::kReject, ErrorCode::kSaturated), 2);
  sink->release();
  sink->waitResults(2);
  broker.stop(/*drain=*/true);
  service::RequestBroker::Stats s = broker.stats();
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.rejectedSaturated, 2u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(RequestBroker, PerClientQueueCapProtectsOtherClients) {
  auto sink = std::make_shared<TestSink>();
  sink->stallOnRunning = true;
  service::BrokerOptions bo = tinyBroker();
  bo.queueDepth = 64;
  bo.clientQueueDepth = 1;
  service::RequestBroker broker(
      bo, [sink](const std::string& c, const std::string& l) {
        (*sink)(c, l);
      });
  EXPECT_TRUE(broker.submit("chatty", tinyRequest("r0")));
  sink->waitStalled();
  // r0 still counts against "chatty" until it finishes serving.
  EXPECT_FALSE(broker.submit("chatty", tinyRequest("r1")));
  EXPECT_TRUE(broker.submit("polite", tinyRequest("r2")))
      << "one saturated client must not starve the rest";
  sink->release();
  sink->waitResults(2);
  broker.stop(/*drain=*/true);
  EXPECT_EQ(broker.stats().rejectedSaturated, 1u);
}

TEST(RequestBroker, CachedReplayIsByteEquivalentToTheSolve) {
  auto sink = std::make_shared<TestSink>();
  service::RequestBroker broker(
      tinyBroker(), [sink](const std::string& c, const std::string& l) {
        (*sink)(c, l);
      });
  EXPECT_TRUE(broker.submit("a", tinyRequest("cold")));
  sink->waitResults(1);
  EXPECT_TRUE(broker.submit("a", tinyRequest("hot")));
  sink->waitResults(2);
  broker.stop(/*drain=*/true);

  service::RouteReply cold, hot;
  {
    std::lock_guard<std::mutex> lock(sink->mu);
    for (const service::ServiceFrame& f : sink->frames) {
      if (f.type != service::FrameType::kResult) continue;
      (f.reply.id == "cold" ? cold : hot) = f.reply;
    }
  }
  ASSERT_EQ(cold.status, core::RouteStatus::kOptimal);
  EXPECT_FALSE(cold.cached);
  EXPECT_TRUE(hot.cached);
  EXPECT_EQ(service::replyEquivalenceSignature(cold),
            service::replyEquivalenceSignature(hot));
  EXPECT_EQ(broker.stats().cacheHits, 1u);
}

TEST(RequestBroker, UnknownRuleRejectsAndShutdownRefusesNewWork) {
  auto sink = std::make_shared<TestSink>();
  service::RequestBroker broker(
      tinyBroker(), [sink](const std::string& c, const std::string& l) {
        (*sink)(c, l);
      });
  service::RouteRequest bad = tinyRequest("bad");
  bad.ruleName = "RULE99";
  EXPECT_TRUE(broker.submit("a", bad));  // admitted, rejected when served
  {
    std::unique_lock<std::mutex> lock(sink->mu);
    sink->cv.wait(lock, [&] {
      for (const service::ServiceFrame& f : sink->frames)
        if (f.type == service::FrameType::kReject) return true;
      return false;
    });
  }
  EXPECT_EQ(
      sink->count(service::FrameType::kReject, ErrorCode::kUnavailable), 1);

  broker.stop(/*drain=*/true);
  EXPECT_FALSE(broker.submit("a", tinyRequest("late")));
  EXPECT_EQ(broker.stats().rejectedShutdown, 1u);
}

TEST(RequestBroker, ForgetClientDropsItsQueuedWork) {
  auto sink = std::make_shared<TestSink>();
  sink->stallOnRunning = true;
  service::BrokerOptions bo = tinyBroker();
  service::RequestBroker broker(
      bo, [sink](const std::string& c, const std::string& l) {
        (*sink)(c, l);
      });
  EXPECT_TRUE(broker.submit("gone", tinyRequest("r0")));
  sink->waitStalled();
  EXPECT_TRUE(broker.submit("gone", tinyRequest("r1")));
  EXPECT_TRUE(broker.submit("gone", tinyRequest("r2")));
  broker.forgetClient("gone");  // drops r1+r2; r0 is in flight and finishes
  sink->release();
  sink->waitResults(1);
  broker.stop(/*drain=*/true);
  service::RequestBroker::Stats s = broker.stats();
  EXPECT_EQ(s.dropped, 2u);
  EXPECT_EQ(s.completed, 1u);
}

// ---- live telemetry ------------------------------------------------------

TEST(ServiceProtocol, PingAndStatsFramesRoundTrip) {
  service::ServiceFrame ping = service::decodeFrame(service::encodePing("p7"));
  ASSERT_EQ(ping.type, service::FrameType::kPing);
  EXPECT_EQ(ping.id, "p7");

  service::ServiceStats s;
  s.uptimeSec = 12.5;
  s.pending = 3;
  s.accepted = 100;
  s.completed = 96;
  s.cacheHits = 40;
  s.rejectedSaturated = 1;
  s.queueWait = {96, 0.21, 1.75, 4.5};
  s.solveCold = {56, 150.5, 900.25, 1200.0};
  s.replyWrite = {96, 0.01, 0.02, 0.05};
  service::ServiceFrame f = service::decodeFrame(service::encodeStats("p7", s));
  ASSERT_EQ(f.type, service::FrameType::kStats);
  EXPECT_EQ(f.id, "p7");
  EXPECT_DOUBLE_EQ(f.stats.uptimeSec, 12.5);
  EXPECT_EQ(f.stats.pending, 3);
  EXPECT_EQ(f.stats.accepted, 100);
  EXPECT_EQ(f.stats.completed, 96);
  EXPECT_EQ(f.stats.cacheHits, 40);
  EXPECT_EQ(f.stats.rejectedSaturated, 1);
  EXPECT_EQ(f.stats.queueWait.count, 96);
  EXPECT_DOUBLE_EQ(f.stats.queueWait.p50Ms, 0.21);
  EXPECT_DOUBLE_EQ(f.stats.queueWait.p95Ms, 1.75);
  EXPECT_DOUBLE_EQ(f.stats.queueWait.p99Ms, 4.5);
  EXPECT_EQ(f.stats.solveCold.count, 56);
  EXPECT_DOUBLE_EQ(f.stats.solveCold.p50Ms, 150.5);
  EXPECT_DOUBLE_EQ(f.stats.solveCold.p99Ms, 1200.0);
  EXPECT_EQ(f.stats.replyWrite.count, 96);
  EXPECT_EQ(f.stats.lease.count, 0);  // untouched quads stay zero
  EXPECT_EQ(f.stats.solveHit.count, 0);
}

TEST(ServiceProtocol, RouteTraceContextRoundTripsAndDefaultsToAbsent) {
  service::RouteRequest req = tinyRequest("r9");
  req.traceId = "9f3a6c01d2e4b875";
  req.parentSpan = 42;
  service::ServiceFrame f = service::decodeFrame(service::encodeRoute(req));
  ASSERT_EQ(f.type, service::FrameType::kRoute);
  EXPECT_EQ(f.request.traceId, "9f3a6c01d2e4b875");
  EXPECT_EQ(f.request.parentSpan, 42u);

  // Context-free requests (the default) must not grow new keys: frames stay
  // byte-compatible with pre-propagation decoders.
  std::string line = service::encodeRoute(tinyRequest("r9"));
  EXPECT_EQ(line.find("traceId"), std::string::npos);
  EXPECT_EQ(line.find("parentSpan"), std::string::npos);
  service::ServiceFrame plain = service::decodeFrame(line);
  ASSERT_EQ(plain.type, service::FrameType::kRoute);
  EXPECT_TRUE(plain.request.traceId.empty());
  EXPECT_EQ(plain.request.parentSpan, 0u);
}

TEST(RequestBroker, LiveStatsFoldsLifecycleHistogramsIntoTheStatsFrame) {
  auto sink = std::make_shared<TestSink>();
  service::RequestBroker broker(
      tinyBroker(), [sink](const std::string& c, const std::string& l) {
        (*sink)(c, l);
      });
  EXPECT_TRUE(broker.submit("a", tinyRequest("cold")));
  sink->waitResults(1);
  EXPECT_TRUE(broker.submit("a", tinyRequest("hot")));
  sink->waitResults(2);
  // The sink sees the result frame while the worker is still inside its
  // bookkeeping tail; draining joins the workers so the counters and the
  // reply-write histogram are final before we read them.
  broker.stop(/*drain=*/true);

  service::ServiceStats s = broker.liveStats();
  EXPECT_GE(s.uptimeSec, 0.0);
  EXPECT_EQ(s.pending, 0);
  EXPECT_EQ(s.accepted, 2);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.cacheHits, 1);
#if OPTR_OBS_ENABLED
  // The histograms are registry-global (other tests in this binary may have
  // fed them), so the counts are lower bounds -- but this broker alone
  // guarantees two queue waits, one cold solve, one replay, two replies,
  // and every percentile it reports must be live and ordered.
  EXPECT_GE(s.queueWait.count, 2);
  EXPECT_GT(s.queueWait.p50Ms, 0.0);
  EXPECT_LE(s.queueWait.p50Ms, s.queueWait.p95Ms);
  EXPECT_LE(s.queueWait.p95Ms, s.queueWait.p99Ms);
  EXPECT_GE(s.lease.count, 1);
  EXPECT_GE(s.solveCold.count, 1);
  EXPECT_GT(s.solveCold.p50Ms, 0.0);
  EXPECT_GE(s.solveHit.count, 1);
  EXPECT_GE(s.replyWrite.count, 2);
#endif
}

}  // namespace
}  // namespace optr
