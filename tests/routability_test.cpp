// Tests for the switchbox routability estimate and the rank-correlation
// helper backing bench_metric_gap.
#include "clip/routability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_clips.h"

namespace optr::clip {
namespace {

using testing::makeSimpleClip;

TEST(Routability, MoreNetsMeansMoreDemand) {
  auto sparse = makeSimpleClip(7, 7, 3, {{{0, 0, 0}, {6, 0, 0}}});
  auto dense = makeSimpleClip(
      7, 7, 3, {{{0, 0, 0}, {6, 0, 0}},
                {{0, 2, 0}, {6, 2, 0}},
                {{0, 4, 0}, {6, 4, 0}}});
  EXPECT_GT(estimateRoutability(dense).demand,
            estimateRoutability(sparse).demand);
  EXPECT_GT(estimateRoutability(dense).score,
            estimateRoutability(sparse).score);
}

TEST(Routability, ObstaclesReduceCapacity) {
  auto open = makeSimpleClip(7, 7, 3, {{{0, 0, 0}, {6, 0, 0}}});
  auto blocked = open;
  for (int x = 0; x < 7; ++x) blocked.obstacles.push_back({x, 3, 1});
  EXPECT_LT(estimateRoutability(blocked).capacity,
            estimateRoutability(open).capacity);
  EXPECT_GT(estimateRoutability(blocked).congestion,
            estimateRoutability(open).congestion);
}

TEST(Routability, BoundaryTerminalsRaisePressure) {
  auto internal = makeSimpleClip(7, 7, 3, {{{1, 1, 0}, {5, 5, 0}}});
  auto boundary = internal;
  for (auto& p : boundary.pins) p.isBoundary = true;
  EXPECT_GT(estimateRoutability(boundary).boundaryPressure,
            estimateRoutability(internal).boundaryPressure);
}

TEST(Routability, FewerLayersMeansLessCapacity) {
  auto thin = makeSimpleClip(7, 7, 2, {{{0, 0, 0}, {6, 0, 0}}});
  auto thick = makeSimpleClip(7, 7, 5, {{{0, 0, 0}, {6, 0, 0}}});
  EXPECT_LT(estimateRoutability(thin).capacity,
            estimateRoutability(thick).capacity);
}

TEST(Spearman, PerfectMonotoneGivesOne) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 40, 80, 160};
  EXPECT_NEAR(spearmanCorrelation(a, b), 1.0, 1e-9);
}

TEST(Spearman, ReversedGivesMinusOne) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {9, 7, 5, 3};
  EXPECT_NEAR(spearmanCorrelation(a, b), -1.0, 1e-9);
}

TEST(Spearman, TiesAreAveraged) {
  std::vector<double> a = {1, 1, 2, 3};
  std::vector<double> b = {1, 1, 2, 3};
  EXPECT_NEAR(spearmanCorrelation(a, b), 1.0, 1e-9);
}

TEST(Spearman, DegenerateInputsReturnZero) {
  EXPECT_EQ(spearmanCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(spearmanCorrelation({1, 2}, {1, 2, 3}), 0.0);
  EXPECT_EQ(spearmanCorrelation({5, 5, 5}, {1, 2, 3}), 0.0);  // zero variance
}

TEST(Spearman, InvariantToMonotoneTransform) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    double v = rng.uniformReal();
    a.push_back(v);
    b.push_back(std::exp(3 * v));  // strictly increasing transform
  }
  EXPECT_NEAR(spearmanCorrelation(a, b), 1.0, 1e-9);
}

}  // namespace
}  // namespace optr::clip
