// BatchRunner: per-clip isolation (a crashing or wedged task becomes a row,
// never an aborted batch) and JSONL checkpoint/resume (a killed sweep resumes
// to the same result set an uninterrupted run produces).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "harness/batch_runner.h"
#include "test_clips.h"

namespace optr::harness {
namespace {

using clip::TrackPoint;

std::vector<clip::Clip> twoClips() {
  clip::Clip a = testing::makeSimpleClip(
      4, 4, 2, {{TrackPoint{0, 0, 0}, TrackPoint{3, 3, 0}}});
  a.id = "clipA";
  clip::Clip b = testing::makeSimpleClip(
      4, 4, 2,
      {{TrackPoint{0, 0, 0}, TrackPoint{3, 0, 0}},
       {TrackPoint{0, 2, 0}, TrackPoint{3, 2, 0}}});
  b.id = "clipB";
  return {a, b};
}

std::vector<tech::RuleConfig> twoRules() {
  return {tech::ruleByName("RULE1").value(), tech::ruleByName("RULE2").value()};
}

BatchOptions fastOptions() {
  BatchOptions opt;
  opt.router.mip.timeLimitSec = 20.0;
  opt.isolateTasks = false;  // in-process: fast, and these clips are benign
  return opt;
}

std::string tempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + ".jsonl";
}

TEST(BatchRow, JsonRoundTripIncludingEscapes) {
  BatchRow row;
  row.clipId = "clip \"7\"\\x";
  row.ruleName = "RULE3";
  row.status = core::RouteStatus::kFeasible;
  row.provenance = core::Provenance::kIlpIncumbent;
  row.errorCode = ErrorCode::kDeadline;
  row.errorMessage = "line1\nline2\ttabbed";
  row.cost = 42.5;
  row.wirelength = 30;
  row.vias = 3;
  row.bestBound = 41.0;
  row.seconds = 0.125;
  row.nodes = 1234567890123LL;
  row.lpIterations = 987654321;
  row.warmStartUsed = true;
  row.crashed = true;

  BatchRow back;
  ASSERT_TRUE(fromJsonLine(toJsonLine(row), back));
  EXPECT_EQ(back.clipId, row.clipId);
  EXPECT_EQ(back.ruleName, row.ruleName);
  EXPECT_EQ(back.status, row.status);
  EXPECT_EQ(back.provenance, row.provenance);
  EXPECT_EQ(back.errorCode, row.errorCode);
  EXPECT_EQ(back.errorMessage, row.errorMessage);
  EXPECT_EQ(back.cost, row.cost);
  EXPECT_EQ(back.wirelength, row.wirelength);
  EXPECT_EQ(back.vias, row.vias);
  EXPECT_EQ(back.bestBound, row.bestBound);
  EXPECT_EQ(back.nodes, row.nodes);
  EXPECT_EQ(back.lpIterations, row.lpIterations);
  EXPECT_EQ(back.warmStartUsed, row.warmStartUsed);
  EXPECT_EQ(back.crashed, row.crashed);
}

TEST(BatchRow, UnknownProvenanceSpellingIsRejected) {
  // A checkpoint written by a different (or corrupted) build must not parse
  // into a default provenance: the row is rejected and re-run instead.
  BatchRow sample;
  sample.clipId = "c";
  sample.ruleName = "r";
  sample.provenance = core::Provenance::kIlpProven;
  std::string line = toJsonLine(sample);
  std::string::size_type at = line.find("ilp-proven");
  ASSERT_NE(at, std::string::npos);
  line.replace(at, std::string("ilp-proven").size(), "ilp-PROVEN");
  BatchRow back;
  EXPECT_FALSE(fromJsonLine(line, back));
}

TEST(BatchRow, MalformedLinesAreRejected) {
  BatchRow row;
  EXPECT_FALSE(fromJsonLine("", row));
  EXPECT_FALSE(fromJsonLine("not json", row));
  // A row truncated mid-write (the crash the checkpoint recovers from).
  BatchRow sample;
  sample.clipId = "c";
  sample.ruleName = "r";
  std::string full = toJsonLine(sample);
  EXPECT_TRUE(fromJsonLine(full, row));
  EXPECT_FALSE(fromJsonLine(full.substr(0, full.size() / 2), row));
}

TEST(BatchRunner, SweepsTheFullMatrix) {
  BatchRunner runner(fastOptions());
  BatchReport report = runner.run(twoClips(), twoRules());
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.executed, 4);
  EXPECT_EQ(report.resumed, 0);
  EXPECT_EQ(report.crashed, 0);
  for (const BatchRow& row : report.rows) {
    EXPECT_EQ(row.status, core::RouteStatus::kOptimal) << row.clipId;
    EXPECT_EQ(row.provenance, core::Provenance::kIlpProven);
    EXPECT_EQ(row.errorCode, ErrorCode::kOk);
    EXPECT_GT(row.cost, 0.0);
  }
  // Task order: clips outer, rules inner.
  EXPECT_EQ(report.rows[0].clipId, "clipA");
  EXPECT_EQ(report.rows[0].ruleName, "RULE1");
  EXPECT_EQ(report.rows[1].ruleName, "RULE2");
  EXPECT_EQ(report.rows[2].clipId, "clipB");
  auto counts = report.provenanceCounts();
  EXPECT_EQ(counts[static_cast<int>(core::Provenance::kIlpProven)], 4);
}

TEST(BatchRunner, UnknownTechnologyBecomesErrorRow) {
  auto clips = twoClips();
  clips[0].techName = "NO-SUCH-NODE";
  BatchRunner runner(fastOptions());
  BatchReport report = runner.run(clips, {tech::ruleByName("RULE1").value()});
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].status, core::RouteStatus::kError);
  EXPECT_EQ(report.rows[0].errorCode, ErrorCode::kUnavailable);
  // The batch carried on past the bad clip.
  EXPECT_EQ(report.rows[1].status, core::RouteStatus::kOptimal);
}

TEST(BatchRunner, WorkerCrashIsContained) {
  BatchOptions opt = fastOptions();
  opt.isolateTasks = true;
  opt.preSolveHook = [](const std::string& clipId, const std::string& rule) {
    if (clipId == "clipA" && rule == "RULE2") std::abort();
  };
  BatchRunner runner(opt);
  BatchReport report = runner.run(twoClips(), twoRules());
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.crashed, 1);
  const BatchRow& dead = report.rows[1];
  EXPECT_EQ(dead.clipId, "clipA");
  EXPECT_EQ(dead.ruleName, "RULE2");
  EXPECT_TRUE(dead.crashed);
  EXPECT_EQ(dead.errorCode, ErrorCode::kCrash);
  EXPECT_EQ(dead.status, core::RouteStatus::kError);
  // Every other task still solved.
  for (int i : {0, 2, 3}) {
    EXPECT_EQ(report.rows[i].status, core::RouteStatus::kOptimal) << i;
  }
}

TEST(BatchRunner, WatchdogKillsWedgedWorker) {
  BatchOptions opt = fastOptions();
  opt.isolateTasks = true;
  opt.taskTimeoutSec = 0.5;
  opt.preSolveHook = [](const std::string& clipId, const std::string&) {
    if (clipId == "clipB") {
      std::this_thread::sleep_for(std::chrono::seconds(60));
    }
  };
  BatchRunner runner(opt);
  BatchReport report =
      runner.run(twoClips(), {tech::ruleByName("RULE1").value()});
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.timedOut, 1);
  EXPECT_EQ(report.rows[0].status, core::RouteStatus::kOptimal);
  EXPECT_EQ(report.rows[1].errorCode, ErrorCode::kDeadline);
  EXPECT_EQ(report.rows[1].status, core::RouteStatus::kError);
}

TEST(BatchRunner, CheckpointResumeMatchesUninterruptedRun) {
  auto clips = twoClips();
  auto rules = twoRules();

  BatchRunner uninterrupted(fastOptions());
  BatchReport full = uninterrupted.run(clips, rules);
  ASSERT_EQ(full.rows.size(), 4u);

  // Simulate a sweep killed after two tasks, then restarted.
  std::string path = tempPath("resume");
  std::remove(path.c_str());
  BatchOptions opt = fastOptions();
  opt.checkpointPath = path;
  opt.stopAfter = 2;
  BatchReport first = BatchRunner(opt).run(clips, rules);
  EXPECT_TRUE(first.stoppedEarly);
  EXPECT_EQ(first.executed, 2);

  opt.stopAfter = -1;
  BatchReport second = BatchRunner(opt).run(clips, rules);
  EXPECT_FALSE(second.stoppedEarly);
  EXPECT_EQ(second.resumed, 2);
  EXPECT_EQ(second.executed, 2);
  ASSERT_EQ(second.rows.size(), full.rows.size());
  for (std::size_t i = 0; i < full.rows.size(); ++i) {
    EXPECT_EQ(second.rows[i].clipId, full.rows[i].clipId);
    EXPECT_EQ(second.rows[i].ruleName, full.rows[i].ruleName);
    EXPECT_EQ(second.rows[i].status, full.rows[i].status);
    EXPECT_EQ(second.rows[i].provenance, full.rows[i].provenance);
    EXPECT_EQ(second.rows[i].cost, full.rows[i].cost);  // deterministic solves
    EXPECT_EQ(second.rows[i].wirelength, full.rows[i].wirelength);
    EXPECT_EQ(second.rows[i].vias, full.rows[i].vias);
  }
  std::remove(path.c_str());
}

TEST(BatchRunner, ThreadPoolMatchesSerialRowForRow) {
  auto clips = twoClips();
  auto rules = twoRules();

  BatchReport serial = BatchRunner(fastOptions()).run(clips, rules);
  ASSERT_EQ(serial.rows.size(), 4u);

  BatchOptions opt = fastOptions();
  opt.threads = 4;  // in-process pool (fastOptions disables isolation)
  BatchReport par = BatchRunner(opt).run(clips, rules);
  EXPECT_EQ(par.executed, serial.executed);
  ASSERT_EQ(par.rows.size(), serial.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    // Same task order, same deterministic outcomes.
    EXPECT_EQ(par.rows[i].clipId, serial.rows[i].clipId) << i;
    EXPECT_EQ(par.rows[i].ruleName, serial.rows[i].ruleName) << i;
    EXPECT_EQ(par.rows[i].status, serial.rows[i].status) << i;
    EXPECT_EQ(par.rows[i].provenance, serial.rows[i].provenance) << i;
    EXPECT_EQ(par.rows[i].cost, serial.rows[i].cost) << i;
    EXPECT_EQ(par.rows[i].wirelength, serial.rows[i].wirelength) << i;
    EXPECT_EQ(par.rows[i].vias, serial.rows[i].vias) << i;
  }
}

TEST(BatchRunner, ThreadPoolCheckpointResumeAndStopAfter) {
  auto clips = twoClips();
  auto rules = twoRules();

  std::string path = tempPath("threadresume");
  std::remove(path.c_str());
  BatchOptions opt = fastOptions();
  opt.threads = 4;
  opt.checkpointPath = path;
  opt.stopAfter = 2;
  BatchReport first = BatchRunner(opt).run(clips, rules);
  EXPECT_TRUE(first.stoppedEarly);
  EXPECT_EQ(first.executed, 2);
  EXPECT_EQ(first.rows.size(), 2u);

  // Resume with the pool: checkpointed tasks load, the rest execute.
  opt.stopAfter = -1;
  BatchReport second = BatchRunner(opt).run(clips, rules);
  EXPECT_FALSE(second.stoppedEarly);
  EXPECT_EQ(second.resumed, 2);
  EXPECT_EQ(second.executed, 2);
  ASSERT_EQ(second.rows.size(), 4u);
  for (const BatchRow& row : second.rows) {
    EXPECT_EQ(row.status, core::RouteStatus::kOptimal) << row.clipId;
  }
  // Task order survives parallel execution.
  EXPECT_EQ(second.rows[0].clipId, "clipA");
  EXPECT_EQ(second.rows[0].ruleName, "RULE1");
  EXPECT_EQ(second.rows[3].clipId, "clipB");
  EXPECT_EQ(second.rows[3].ruleName, "RULE2");
  std::remove(path.c_str());
}

TEST(BatchRunner, ForkIsolationIgnoresThreadCount) {
  // threads > 1 with isolation must not fork from pool threads: the runner
  // falls back to the serial fork loop and still contains a crash.
  BatchOptions opt = fastOptions();
  opt.isolateTasks = true;
  opt.threads = 8;
  opt.preSolveHook = [](const std::string& clipId, const std::string& rule) {
    if (clipId == "clipA" && rule == "RULE2") std::abort();
  };
  BatchReport report = BatchRunner(opt).run(twoClips(), twoRules());
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.crashed, 1);
  EXPECT_TRUE(report.rows[1].crashed);
  for (int i : {0, 2, 3}) {
    EXPECT_EQ(report.rows[i].status, core::RouteStatus::kOptimal) << i;
  }
}

TEST(BatchRunner, TruncatedCheckpointLineReRunsThatTask) {
  auto clips = twoClips();
  std::vector<tech::RuleConfig> rules = {tech::ruleByName("RULE1").value()};

  std::string path = tempPath("truncated");
  std::remove(path.c_str());
  BatchOptions opt = fastOptions();
  opt.checkpointPath = path;
  BatchReport full = BatchRunner(opt).run(clips, rules);
  ASSERT_EQ(full.rows.size(), 2u);

  // Chop the checkpoint mid-line, as a SIGKILL during fwrite would.
  std::ifstream in(path);
  std::string lines((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::size_t firstEol = lines.find('\n');
  ASSERT_NE(firstEol, std::string::npos);
  std::ofstream out(path, std::ios::trunc);
  out << lines.substr(0, firstEol + 1)                 // row 0 intact
      << lines.substr(firstEol + 1, 20);               // row 1 truncated
  out.close();

  BatchReport resumed = BatchRunner(opt).run(clips, rules);
  EXPECT_EQ(resumed.resumed, 1);
  EXPECT_EQ(resumed.executed, 1);
  EXPECT_EQ(resumed.checkpointSkipped, 1);  // the torn line, counted
  ASSERT_EQ(resumed.rows.size(), 2u);
  EXPECT_EQ(resumed.rows[1].status, full.rows[1].status);
  EXPECT_EQ(resumed.rows[1].cost, full.rows[1].cost);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optr::harness
