// Tests for the report renderers (tables and figure series).
#include "report/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace optr::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "looooong", "c"});
  t.addRow({"1", "2", "3"});
  t.addRow({"wide-cell", "x", "y"});
  std::string out = t.render();
  // Each line has the same width.
  std::size_t firstLen = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, firstLen);
    pos = next + 1;
  }
  EXPECT_NE(out.find("looooong"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
}

TEST(Table, HandlesShortRows) {
  Table t({"a", "b"});
  t.addRow({"only"});
  std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(Series, RendersSparklineAndStats) {
  Series s("title", "x", "y");
  s.add("rising", {0, 1, 2, 3, 4, 5});
  s.add("flat", {2, 2, 2, 2});
  std::string out = s.render(6);
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("rising"), std::string::npos);
  EXPECT_NE(out.find("med="), std::string::npos);
}

TEST(Series, CountsInfeasiblePoints) {
  Series s("t", "x", "y");
  double inf = std::numeric_limits<double>::infinity();
  s.add("mixed", {0, 1, inf, inf});
  std::string out = s.render();
  EXPECT_NE(out.find("infeasible=2"), std::string::npos);
}

TEST(Series, EmptySeriesDoesNotCrash) {
  Series s("t", "x", "y");
  EXPECT_FALSE(s.render().empty());
  s.add("empty", {});
  EXPECT_FALSE(s.render().empty());
}

}  // namespace
}  // namespace optr::report
