// Shared helpers: hand-built and randomized clips for unit/integration tests.
#pragma once

#include <string>
#include <vector>

#include "clip/clip.h"
#include "common/rng.h"

namespace optr::testing {

/// Builds a clip whose nets are given as lists of pins, each pin being a
/// list of access points. The first pin of each net is the source.
inline clip::Clip makeClip(
    int tracksX, int tracksY, int numLayers,
    const std::vector<std::vector<std::vector<clip::TrackPoint>>>& nets,
    const std::string& techName = "N28-12T") {
  clip::Clip c;
  c.id = "test";
  c.techName = techName;
  c.tracksX = tracksX;
  c.tracksY = tracksY;
  c.numLayers = numLayers;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    clip::ClipNet net;
    net.name = "n" + std::to_string(n);
    for (const auto& aps : nets[n]) {
      clip::ClipPin pin;
      pin.net = static_cast<int>(n);
      pin.accessPoints = aps;
      // Synthesize a small pin rect around the first access point (pin-cost
      // metric input only).
      pin.shapeNm = Rect(aps[0].x * 100, aps[0].y * 100, aps[0].x * 100 + 50,
                         aps[0].y * 100 + 50);
      net.pins.push_back(static_cast<int>(c.pins.size()));
      c.pins.push_back(std::move(pin));
    }
    c.nets.push_back(std::move(net));
  }
  return c;
}

/// Single-access-point convenience overload.
inline clip::Clip makeSimpleClip(
    int tracksX, int tracksY, int numLayers,
    const std::vector<std::vector<clip::TrackPoint>>& nets,
    const std::string& techName = "N28-12T") {
  std::vector<std::vector<std::vector<clip::TrackPoint>>> wrapped;
  for (const auto& net : nets) {
    std::vector<std::vector<clip::TrackPoint>> pins;
    for (const auto& ap : net) pins.push_back({ap});
    wrapped.push_back(std::move(pins));
  }
  return makeClip(tracksX, tracksY, numLayers, wrapped, techName);
}

/// Random clip: `numNets` two-to-three-pin nets with distinct pin vertices
/// on the bottom layer. Deterministic in the seed.
inline clip::Clip randomClip(std::uint64_t seed, int tracksX = 5,
                             int tracksY = 5, int numLayers = 3,
                             int numNets = 3) {
  Rng rng(seed);
  std::vector<std::vector<clip::TrackPoint>> nets;
  std::vector<clip::TrackPoint> taken;
  auto freshPoint = [&]() {
    for (int tries = 0; tries < 200; ++tries) {
      clip::TrackPoint p;
      p.x = static_cast<int>(rng.uniformInt(0, tracksX - 1));
      p.y = static_cast<int>(rng.uniformInt(0, tracksY - 1));
      p.z = 0;
      bool clash = false;
      for (const auto& q : taken) {
        if (q == p) { clash = true; break; }
      }
      if (!clash) {
        taken.push_back(p);
        return p;
      }
    }
    return clip::TrackPoint{-1, -1, -1};  // exhausted; caller shrinks
  };
  for (int n = 0; n < numNets; ++n) {
    int pins = rng.chance(0.3) ? 3 : 2;
    std::vector<clip::TrackPoint> net;
    for (int p = 0; p < pins; ++p) {
      auto pt = freshPoint();
      if (pt.x >= 0) net.push_back(pt);
    }
    if (net.size() >= 2) nets.push_back(std::move(net));
  }
  return makeSimpleClip(tracksX, tracksY, numLayers, nets);
}

}  // namespace optr::testing
