// Tests for the LEF/DEF-subset writer and reader.
#include "layout/def_io.h"

#include <gtest/gtest.h>

#include <fstream>

namespace optr::layout {
namespace {

struct Fixture {
  CellLibrary lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  Design design;

  Fixture() {
    DesignSpec spec;
    spec.targetInstances = 60;
    spec.seed = 4;
    design = generateDesign(lib, spec);
  }
};

TEST(DefIo, LefContainsEveryMacroAndPin) {
  Fixture f;
  std::string lef = writeLef(f.lib);
  EXPECT_NE(lef.find("VERSION 5.8"), std::string::npos);
  for (const CellMaster& m : f.lib.masters()) {
    EXPECT_NE(lef.find("MACRO " + m.name), std::string::npos) << m.name;
    for (const PinTemplate& p : m.pins) {
      EXPECT_NE(lef.find("PIN " + p.name), std::string::npos);
    }
  }
  EXPECT_NE(lef.find("END LIBRARY"), std::string::npos);
}

TEST(DefIo, DefContainsComponentsAndNets) {
  Fixture f;
  std::string def = writeDef(f.design, f.lib);
  EXPECT_NE(def.find("DESIGN " + f.design.name), std::string::npos);
  EXPECT_NE(def.find("COMPONENTS " +
                     std::to_string(f.design.instances.size())),
            std::string::npos);
  EXPECT_NE(def.find("NETS " + std::to_string(f.design.nets.size())),
            std::string::npos);
  EXPECT_NE(def.find("END DESIGN"), std::string::npos);
}

TEST(DefIo, RoundTripPreservesPlacementAndNetlist) {
  Fixture f;
  std::string def = writeDef(f.design, f.lib);
  auto back = readDef(def, f.lib);
  ASSERT_TRUE(back.isOk()) << back.status().message();
  const Design& d = back.value();
  EXPECT_EQ(d.name, f.design.name);
  ASSERT_EQ(d.instances.size(), f.design.instances.size());
  for (std::size_t i = 0; i < d.instances.size(); ++i) {
    EXPECT_EQ(d.instances[i].name, f.design.instances[i].name);
    EXPECT_EQ(d.instances[i].master, f.design.instances[i].master);
    EXPECT_EQ(d.instances[i].row, f.design.instances[i].row);
    EXPECT_EQ(d.instances[i].siteX, f.design.instances[i].siteX);
  }
  ASSERT_EQ(d.nets.size(), f.design.nets.size());
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    EXPECT_EQ(d.nets[n].name, f.design.nets[n].name);
    ASSERT_EQ(d.nets[n].terminals.size(), f.design.nets[n].terminals.size());
    for (std::size_t t = 0; t < d.nets[n].terminals.size(); ++t) {
      EXPECT_EQ(d.nets[n].terminals[t].instance,
                f.design.nets[n].terminals[t].instance);
      EXPECT_EQ(d.nets[n].terminals[t].pin,
                f.design.nets[n].terminals[t].pin);
    }
  }
}

TEST(DefIo, ReadRejectsUnknownMaster) {
  Fixture f;
  std::string def =
      "DESIGN x ;\nCOMPONENTS 1 ;\n- u0 NOT_A_CELL + PLACED ( 0 0 ) N ;\n"
      "END COMPONENTS\nEND DESIGN\n";
  EXPECT_FALSE(readDef(def, f.lib).isOk());
}

TEST(DefIo, ReadRejectsMissingDesign) {
  Fixture f;
  EXPECT_FALSE(readDef("COMPONENTS 0 ;\nEND COMPONENTS\n", f.lib).isOk());
}

TEST(DefIo, SaveWritesBothFiles) {
  Fixture f;
  std::string lef = ::testing::TempDir() + "/lib.lef";
  std::string def = ::testing::TempDir() + "/design.def";
  ASSERT_TRUE(saveDesign(lef, def, f.design, f.lib).isOk());
  std::ifstream a(lef), b(def);
  EXPECT_TRUE(a.good());
  EXPECT_TRUE(b.good());
}

}  // namespace
}  // namespace optr::layout
