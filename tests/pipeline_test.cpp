// End-to-end pipeline test: synthesize a design, place, globally route,
// extract clips, rank by pin cost, and run OptRouter on the hardest clip --
// the complete Figure 6 flow, asserted for internal consistency at each
// stage.
#include <gtest/gtest.h>

#include <algorithm>

#include "clip/clip_io.h"
#include "core/opt_router.h"
#include "layout/clip_extract.h"
#include "layout/global_route.h"
#include "route/drc.h"

namespace optr {
namespace {

TEST(Pipeline, Figure6FlowEndToEnd) {
  auto techn = tech::Technology::n28_12t();
  auto lib = layout::CellLibrary::forTechnology(techn);

  layout::DesignSpec spec;
  spec.name = "PIPE";
  spec.targetInstances = 250;
  spec.utilization = 0.92;
  spec.seed = 77;
  layout::Design design = layout::generateDesign(lib, spec);
  ASSERT_GT(design.instances.size(), 200u);
  ASSERT_GT(design.nets.size(), 100u);

  layout::GlobalRoute gr = layout::globalRoute(design, lib);
  ASSERT_GT(gr.crossings.size(), 10u);

  layout::ClipExtractOptions eo;
  eo.maxNets = 5;
  eo.maxLayers = 4;
  auto clips = layout::extractClips(design, lib, gr, eo);
  ASSERT_GT(clips.size(), 3u);
  for (const clip::Clip& c : clips) ASSERT_TRUE(c.validate().isOk()) << c.id;

  // IO round trip of the whole harvest.
  auto back = clip::fromTextMulti(clip::toTextMulti(clips));
  ASSERT_TRUE(back.isOk());
  ASSERT_EQ(back.value().size(), clips.size());

  // Route the hardest clip.
  std::sort(clips.begin(), clips.end(),
            [](const clip::Clip& a, const clip::Clip& b) {
              return clip::pinCost(a).total() > clip::pinCost(b).total();
            });
  const clip::Clip& hard = clips.front();

  core::OptRouterOptions o;
  o.mip.timeLimitSec = 30;
  o.formulation.netBBoxMargin = 3;
  o.formulation.netLayerMargin = 1;
  auto rule = tech::ruleByName("RULE1").value();
  core::OptRouter router(techn, rule, o);
  core::RouteResult r = router.route(hard);
  EXPECT_NE(r.status, core::RouteStatus::kError);
  if (r.hasSolution()) {
    grid::RoutingGraph g(hard, techn, rule);
    route::DrcChecker drc(hard, g);
    auto violations = drc.check(r.solution);
    EXPECT_TRUE(violations.empty())
        << hard.id << ": " << violations[0].describe(g);
    EXPECT_GT(r.cost, 0.0);
    EXPECT_EQ(r.cost, r.wirelength + 4.0 * r.vias);
  }
}

TEST(Pipeline, DeterministicAcrossRuns) {
  auto techn = tech::Technology::n28_8t();
  auto lib = layout::CellLibrary::forTechnology(techn);
  layout::DesignSpec spec;
  spec.targetInstances = 150;
  spec.seed = 5;
  auto build = [&] {
    layout::Design d = layout::generateDesign(lib, spec);
    layout::GlobalRoute gr = layout::globalRoute(d, lib);
    layout::ClipExtractOptions eo;
    eo.maxLayers = 4;
    return layout::extractClips(d, lib, gr, eo);
  };
  auto a = build();
  auto b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(clip::toText(a[i]), clip::toText(b[i]));
  }
}

}  // namespace
}  // namespace optr
