// Pricing-rule and dual-restart equivalence tests for the simplex kernel.
//
// The perf work on the LP engine (Devex reference weights, partial-pricing
// candidate lists, the dual-simplex warm restart) must never change WHAT the
// solver proves, only how many pivots it takes. These tests pin that
// contract: devex and dantzig agree on optimal objectives (random LPs and
// the real routing relaxations from the bundled example clips), a
// dual-restart re-solve after bound tightening matches a cold solve, and the
// Bland fallback still terminates a classic cycling instance when layered on
// top of devex.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clip/clip_io.h"
#include "common/rng.h"
#include "core/formulation.h"
#include "grid/routing_graph.h"
#include "lp/simplex.h"
#include "tech/rules.h"
#include "tech/technology.h"

namespace optr::lp {
namespace {

constexpr double kTol = 1e-6;

SimplexOptions withPricing(PricingRule rule, bool dualRestart = true) {
  SimplexOptions o;
  o.pricing = rule;
  o.dualRestart = dualRestart;
  return o;
}

/// Random bounded LP with mixed row senses whose origin is feasible for the
/// <=/>= rows; equality rows are anchored through a dedicated column so the
/// instance stays feasible by construction.
LpModel randomMixedLp(std::uint64_t seed, int n) {
  Rng rng(seed);
  LpModel m;
  for (int c = 0; c < n; ++c) {
    m.addColumn(static_cast<double>(rng.uniformInt(-5, 5)), 0.0, 3.0);
  }
  const int rows = static_cast<int>(rng.uniformInt(2, 6));
  for (int r = 0; r < rows; ++r) {
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (rng.chance(0.6))
        rb.add(c, static_cast<double>(rng.uniformInt(-3, 3)));
    }
    if (rng.chance(0.25)) {
      // Equality row satisfied at the origin (x_a - x_b = 0), so the
      // instance stays feasible; phase 1 still has to repair its artificial.
      int a1 = static_cast<int>(rng.uniformInt(0, n - 1));
      int a2 = static_cast<int>(rng.uniformInt(0, n - 1));
      rb = RowBuilder();
      rb.add(a1, 1.0);
      rb.add(a2, -1.0);
      rb.sense = RowSense::kEq;
      rb.rhs = 0.0;
    } else {
      rb.sense = rng.chance(0.5) ? RowSense::kLe : RowSense::kGe;
      rb.rhs = rb.sense == RowSense::kLe
                   ? static_cast<double>(rng.uniformInt(0, 9))
                   : -static_cast<double>(rng.uniformInt(0, 9));
    }
    m.addRow(rb);
  }
  return m;
}

TEST(LpPricing, DevexMatchesDantzigOnRandomLps) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    LpModel m = randomMixedLp(seed, 5);
    SimplexSolver dantzig(withPricing(PricingRule::kDantzig));
    SimplexSolver devex(withPricing(PricingRule::kDevex));
    LpResult a = dantzig.solve(m);
    LpResult b = devex.solve(m);
    ASSERT_EQ(a.status, LpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(b.status, LpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(a.objective, b.objective, kTol) << "seed " << seed;
    EXPECT_TRUE(m.isFeasible(b.x, 1e-6)) << "seed " << seed;
  }
}

TEST(LpPricing, DevexMatchesDantzigOnSboxRelaxations) {
  // The real thing: LP relaxations of the routing formulation over the
  // bundled example clips (the same fixtures the session sweeps solve).
  auto loaded = clip::loadClips(OPTR_EXAMPLES_CLIPS);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().message();
  auto techn = tech::Technology::n28_12t();
  auto ruleOr = tech::ruleByName("RULE1");
  ASSERT_TRUE(ruleOr.isOk());
  int covered = 0;
  for (const clip::Clip& c : loaded.value()) {
    if (c.id != "sbox3" && c.id != "sbox11") continue;
    grid::RoutingGraph graph(c, techn, ruleOr.value());
    core::FormulationOptions fo;
    fo.netBBoxMargin = 3;
    fo.netLayerMargin = 1;
    core::Formulation formulation(c, graph, fo);
    SimplexSolver dantzig(withPricing(PricingRule::kDantzig));
    SimplexSolver devex(withPricing(PricingRule::kDevex));
    LpResult a = dantzig.solve(formulation.model());
    LpResult b = devex.solve(formulation.model());
    ASSERT_EQ(a.status, LpStatus::kOptimal) << c.id;
    ASSERT_EQ(b.status, LpStatus::kOptimal) << c.id;
    // Relative tolerance: routing relaxations have objectives in the 1e3
    // range, so compare to ~1e-7 relative.
    EXPECT_NEAR(a.objective, b.objective,
                kTol * std::max(1.0, std::abs(a.objective)))
        << c.id;
    ++covered;
  }
  EXPECT_EQ(covered, 2);
}

TEST(LpPricing, DualRestartAfterBoundTighteningMatchesColdSolve) {
  int restartsEngaged = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    LpModel m = randomMixedLp(seed, 5);
    SimplexSolver warm(withPricing(PricingRule::kDevex, /*dualRestart=*/true));
    LpResult base = warm.solve(m);
    ASSERT_EQ(base.status, LpStatus::kOptimal) << "seed " << seed;

    // Tighten bounds the way a branch-and-bound child would: clamp the two
    // most fractional-ish columns into a sub-box. The origin stays inside
    // every sub-box here, so the child remains feasible.
    Rng rng(seed * 977 + 11);
    int c1 = static_cast<int>(rng.uniformInt(0, m.numCols() - 1));
    int c2 = static_cast<int>(rng.uniformInt(0, m.numCols() - 1));
    m.setBounds(c1, 0.0, 1.0);
    m.setBounds(c2, 0.0, 0.0);

    ASSERT_TRUE(warm.canContinue(m));
    LpResult restarted = warm.solveContinue(m);
    SimplexSolver cold(withPricing(PricingRule::kDevex, /*dualRestart=*/false));
    LpResult reference = cold.solve(m);
    ASSERT_EQ(restarted.status, reference.status) << "seed " << seed;
    if (reference.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(restarted.objective, reference.objective, kTol)
        << "seed " << seed;
    EXPECT_TRUE(m.isFeasible(restarted.x, 1e-6)) << "seed " << seed;
    if (restarted.usedDualRestart) ++restartsEngaged;
  }
  // The restart is an optimization, not a mandate -- but if it never
  // engages across 40 bound-tightened re-solves, the plumbing is dead.
  EXPECT_GT(restartsEngaged, 0);
}

TEST(LpPricing, DualRestartPivotsAreCountedAndOptional) {
  // Deterministic instance where tightening a bound cuts off the optimum:
  // max x+y (min -x-y) in a triangle; the parent optimum sits at the
  // tightened corner, so the child MUST re-pivot (dual steps if enabled).
  LpModel m;
  int x = m.addColumn(-1.0, 0.0, 10.0);
  int y = m.addColumn(-1.0, 0.0, 10.0);
  RowBuilder rb;
  rb.add(x, 1.0);
  rb.add(y, 1.0);
  rb.sense = RowSense::kLe;
  rb.rhs = 6.0;
  m.addRow(rb);

  SimplexSolver warm(withPricing(PricingRule::kDevex, /*dualRestart=*/true));
  LpResult base = warm.solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  EXPECT_NEAR(base.objective, -6.0, kTol);

  m.setBounds(x, 0.0, 1.0);  // parent basis becomes primal infeasible
  ASSERT_TRUE(warm.canContinue(m));
  LpResult restarted = warm.solveContinue(m);
  ASSERT_EQ(restarted.status, LpStatus::kOptimal);
  EXPECT_NEAR(restarted.objective, -6.0, kTol);  // x=1, y=5
  EXPECT_TRUE(restarted.usedDualRestart);
  EXPECT_GT(restarted.dualPivots, 0);
  EXPECT_LE(restarted.dualPivots, restarted.iterations);

  // Same re-solve with the restart disabled: identical verdict through the
  // composite primal path, and no dual pivots reported.
  SimplexSolver cold(withPricing(PricingRule::kDevex, /*dualRestart=*/false));
  LpResult primal = cold.solve(m);
  ASSERT_EQ(primal.status, LpStatus::kOptimal);
  EXPECT_NEAR(primal.objective, restarted.objective, kTol);
  EXPECT_EQ(primal.dualPivots, 0);
  EXPECT_FALSE(primal.usedDualRestart);
}

TEST(LpPricing, BlandTerminatesCyclingInstanceUnderDevex) {
  // Beale's classic cycling example: textbook Dantzig pricing with
  // smallest-index tie-breaking cycles forever on this instance. The kernel
  // must escape via the stall-triggered Bland fallback regardless of the
  // configured pricing rule. Optimum: x = (0.04, 0, 1, 0), objective -0.05.
  LpModel m;
  int x1 = m.addColumn(-0.75, 0.0, kInfinity);
  int x2 = m.addColumn(150.0, 0.0, kInfinity);
  int x3 = m.addColumn(-0.02, 0.0, 1.0);
  int x4 = m.addColumn(6.0, 0.0, kInfinity);
  {
    RowBuilder rb;
    rb.add(x1, 0.25);
    rb.add(x2, -60.0);
    rb.add(x3, -0.04);
    rb.add(x4, 9.0);
    rb.sense = RowSense::kLe;
    rb.rhs = 0.0;
    m.addRow(rb);
  }
  {
    RowBuilder rb;
    rb.add(x1, 0.5);
    rb.add(x2, -90.0);
    rb.add(x3, -0.02);
    rb.add(x4, 3.0);
    rb.sense = RowSense::kLe;
    rb.rhs = 0.0;
    m.addRow(rb);
  }
  SimplexOptions o = withPricing(PricingRule::kDevex);
  o.blandAfterStalls = 3;  // force the fallback to engage within a few pivots
  o.maxIterations = 10000;
  SimplexSolver solver(o);
  LpResult r = solver.solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, kTol);
  EXPECT_NEAR(r.x[x1], 0.04, kTol);
  EXPECT_NEAR(r.x[x3], 1.0, kTol);
}

TEST(LpPricing, ForceBlandDisablesDualRestart) {
  // The MIP's numerical-recovery retry re-solves with forceBland: the
  // conservative ladder must not silently take the dual shortcut.
  LpModel m;
  int x = m.addColumn(-1.0, 0.0, 10.0);
  RowBuilder rb;
  rb.add(x, 1.0);
  rb.sense = RowSense::kLe;
  rb.rhs = 5.0;
  m.addRow(rb);

  SimplexOptions o = withPricing(PricingRule::kDevex, /*dualRestart=*/true);
  o.forceBland = true;
  SimplexSolver solver(o);
  LpResult base = solver.solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  m.setBounds(x, 0.0, 2.0);
  ASSERT_TRUE(solver.canContinue(m));
  LpResult r = solver.solveContinue(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, kTol);
  EXPECT_FALSE(r.usedDualRestart);
  EXPECT_EQ(r.dualPivots, 0);
}

}  // namespace
}  // namespace optr::lp
