// Unit tests for the DRC checker: each rule family is exercised with
// hand-built solutions that are known-clean or known-violating.
#include "route/drc.h"

#include <gtest/gtest.h>

#include "test_clips.h"

namespace optr::route {
namespace {

using clip::TrackPoint;
using testing::makeSimpleClip;

/// Finds the directed planar arc from a to b (same layer), or the unit via
/// arc when a and b differ only in z.
int findArc(const grid::RoutingGraph& g, TrackPoint a, TrackPoint b) {
  int va = g.vertexId(a), vb = g.vertexId(b);
  for (int arc : g.outArcs(va)) {
    if (g.arc(arc).to == vb) return arc;
  }
  return -1;
}

/// Convenience: builds the arc chain for a sequence of adjacent vertices.
std::vector<int> chain(const grid::RoutingGraph& g,
                       const std::vector<TrackPoint>& pts) {
  std::vector<int> arcs;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    int a = findArc(g, pts[i], pts[i + 1]);
    EXPECT_GE(a, 0) << "missing arc step " << i;
    if (a >= 0) arcs.push_back(a);
  }
  return arcs;
}

struct Fixture {
  clip::Clip c;
  tech::Technology techn = tech::Technology::n28_12t();
  tech::RuleConfig rule;
  std::unique_ptr<grid::RoutingGraph> g;
  std::unique_ptr<DrcChecker> drc;

  void build() {
    g = std::make_unique<grid::RoutingGraph>(c, techn, rule);
    drc = std::make_unique<DrcChecker>(c, *g);
  }
};

TEST(Drc, CleanStraightSolutionPasses) {
  Fixture f;
  f.c = makeSimpleClip(5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}});
  f.build();
  RouteSolution sol;
  sol.usedArcs.resize(1);
  sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {2, 0, 0},
                                 {3, 0, 0}, {4, 0, 0}});
  sol.normalize();
  EXPECT_TRUE(f.drc->check(sol).empty());
}

TEST(Drc, OpenNetDetected) {
  Fixture f;
  f.c = makeSimpleClip(5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}});
  f.build();
  RouteSolution sol;
  sol.usedArcs.resize(1);  // nothing routed
  auto v = f.drc->check(sol);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::kOpenNet);
}

TEST(Drc, ArcConflictDetected) {
  Fixture f;
  f.c = makeSimpleClip(4, 2, 1,
                       {{{0, 0, 0}, {3, 0, 0}}, {{0, 1, 0}, {3, 1, 0}}});
  f.build();
  RouteSolution sol;
  sol.usedArcs.resize(2);
  sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}});
  // Net 1 illegally reuses net 0's middle arc (and is open, and shares
  // vertices); the arc conflict must be among the reported violations.
  sol.usedArcs[1] = {sol.usedArcs[0][1]};
  sol.normalize();
  auto v = f.drc->check(sol);
  bool foundArcConflict = false;
  for (const auto& viol : v)
    if (viol.kind == ViolationKind::kArcConflict) foundArcConflict = true;
  EXPECT_TRUE(foundArcConflict);
}

TEST(Drc, VertexConflictFromStackedViaCrossing) {
  // Net 0 wires straight across (2,0) on M2; net 1 stacks vias through
  // (2,0) from M2 to M4 without sharing any arc with net 0.
  Fixture f;
  f.c = makeSimpleClip(5, 2, 3,
                       {{{0, 0, 0}, {4, 0, 0}}, {{2, 0, 0}, {3, 0, 2}}});
  f.build();
  RouteSolution sol;
  sol.usedArcs.resize(2);
  sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {2, 0, 0},
                                 {3, 0, 0}, {4, 0, 0}});
  sol.usedArcs[1] = chain(*f.g, {{2, 0, 0}, {2, 0, 1}, {2, 0, 2},
                                 {3, 0, 2}});
  sol.normalize();
  auto v = f.drc->check(sol);
  bool foundVertexConflict = false;
  for (const auto& viol : v) {
    if (viol.kind == ViolationKind::kVertexConflict &&
        viol.vertex == f.g->vertexId(2, 0, 0)) {
      foundVertexConflict = true;
    }
  }
  EXPECT_TRUE(foundVertexConflict);
}

TEST(Drc, ViaAdjacencyOrthogonalOnlyUnderRule6) {
  // Two nets with vias at orthogonally adjacent sites (1,0) and (2,0).
  auto buildSol = [](Fixture& f, RouteSolution& sol) {
    sol.usedArcs.assign(2, {});
    sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {1, 0, 1},
                                   {1, 1, 1}});
    sol.usedArcs[1] = chain(*f.g, {{3, 0, 0}, {2, 0, 0}, {2, 0, 1},
                                   {2, 1, 1}});
    sol.normalize();
  };
  {
    Fixture f;
    f.c = makeSimpleClip(5, 3, 2,
                         {{{0, 0, 0}, {1, 1, 1}}, {{3, 0, 0}, {2, 1, 1}}});
    f.rule = tech::ruleByName("RULE1").value();  // no via restriction
    f.build();
    RouteSolution sol;
    buildSol(f, sol);
    for (const auto& viol : f.drc->check(sol))
      EXPECT_NE(viol.kind, ViolationKind::kViaAdjacency)
          << viol.describe(*f.g);
  }
  {
    Fixture f;
    f.c = makeSimpleClip(5, 3, 2,
                         {{{0, 0, 0}, {1, 1, 1}}, {{3, 0, 0}, {2, 1, 1}}});
    f.rule = tech::ruleByName("RULE6").value();  // 4 neighbors blocked
    f.build();
    RouteSolution sol;
    buildSol(f, sol);
    bool found = false;
    for (const auto& viol : f.drc->check(sol))
      if (viol.kind == ViolationKind::kViaAdjacency) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(Drc, ViaAdjacencyDiagonalOnlyUnderRule9) {
  // Vias at diagonally adjacent sites (1,0) and (2,1).
  auto buildSol = [](Fixture& f, RouteSolution& sol) {
    sol.usedArcs.assign(2, {});
    sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {1, 0, 1},
                                   {1, 1, 1}, {1, 2, 1}});
    sol.usedArcs[1] = chain(*f.g, {{3, 1, 0}, {2, 1, 0}, {2, 1, 1},
                                   {2, 2, 1}});
    sol.normalize();
  };
  auto make = [&](const char* ruleName) {
    Fixture f;
    f.c = makeSimpleClip(5, 3, 2,
                         {{{0, 0, 0}, {1, 2, 1}}, {{3, 1, 0}, {2, 2, 1}}});
    f.rule = tech::ruleByName(ruleName).value();
    f.build();
    RouteSolution sol;
    buildSol(f, sol);
    int adjacency = 0;
    for (const auto& viol : f.drc->check(sol))
      if (viol.kind == ViolationKind::kViaAdjacency) ++adjacency;
    return adjacency;
  };
  EXPECT_EQ(make("RULE6"), 0);  // orthogonal-only: diagonal pair is legal
  EXPECT_GT(make("RULE9"), 0);  // 8-neighbor: diagonal pair conflicts
}

TEST(Drc, SadpEolConflictDetectedOnSadpLayer) {
  // Two wires on M3 (vertical, SADP under RULE2) ending with vias on
  // adjacent tracks at aligned positions -> same-direction EOL conflict.
  Fixture f;
  f.c = makeSimpleClip(4, 4, 3,
                       {{{1, 0, 0}, {1, 2, 2}}, {{2, 0, 0}, {2, 2, 2}}});
  f.rule = tech::ruleByName("RULE2").value();  // SADP >= M2
  f.build();
  RouteSolution sol;
  sol.usedArcs.assign(2, {});
  // Net 0: up at (1,0), along M3 to (1,2), up to M4.
  sol.usedArcs[0] = chain(*f.g, {{1, 0, 0}, {1, 0, 1}, {1, 1, 1},
                                 {1, 2, 1}, {1, 2, 2}});
  // Net 1: same shape one track over.
  sol.usedArcs[1] = chain(*f.g, {{2, 0, 0}, {2, 0, 1}, {2, 1, 1},
                                 {2, 2, 1}, {2, 2, 2}});
  sol.normalize();
  bool found = false;
  for (const auto& viol : f.drc->check(sol))
    if (viol.kind == ViolationKind::kSadpEol) found = true;
  EXPECT_TRUE(found);

  // The same geometry is legal when SADP only starts at M4 (RULE4).
  Fixture f2;
  f2.c = f.c;
  f2.rule = tech::ruleByName("RULE4").value();
  f2.build();
  RouteSolution sol2 = sol;
  for (const auto& viol : f2.drc->check(sol2))
    EXPECT_NE(viol.kind, ViolationKind::kSadpEol) << viol.describe(*f2.g);
}

TEST(Drc, EolScanFindsDirections) {
  Fixture f;
  f.c = makeSimpleClip(5, 3, 2, {{{0, 0, 0}, {3, 2, 1}}});
  f.rule = tech::ruleByName("RULE2").value();
  f.build();
  RouteSolution sol;
  sol.usedArcs.assign(1, {});
  // M2 wire from (0,0) to (3,0), via up at (3,0), M3 up to (3,2).
  sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {2, 0, 0},
                                 {3, 0, 0}, {3, 0, 1}, {3, 1, 1},
                                 {3, 2, 1}});
  sol.normalize();
  auto eols = f.drc->findEols(sol, 0);
  // M2 line ends at (3,0,0) with the wire extending toward -x (pl-style);
  // M3 line ends at (3,0,1) extending toward +y.
  bool m2End = false, m3End = false;
  for (const auto& e : eols) {
    auto p = f.g->coords(e.vertex);
    if (p.z == 0 && p.x == 3 && !e.towardPositive) m2End = true;
    if (p.z == 1 && p.y == 0 && e.towardPositive) m3End = true;
  }
  EXPECT_TRUE(m2End);
  EXPECT_TRUE(m3End);
}

TEST(Drc, ObstacleTouchReported) {
  Fixture f;
  f.c = makeSimpleClip(5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}});
  f.c.obstacles.push_back({2, 0, 0});
  f.build();
  RouteSolution sol;
  sol.usedArcs.resize(1);
  sol.usedArcs[0] = chain(*f.g, {{0, 0, 0}, {1, 0, 0}, {2, 0, 0},
                                 {3, 0, 0}, {4, 0, 0}});
  sol.normalize();
  bool found = false;
  for (const auto& viol : f.drc->check(sol)) {
    if (viol.kind == ViolationKind::kVertexConflict &&
        viol.netA == grid::kVertexBlocked) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace optr::route
