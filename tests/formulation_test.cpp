// Unit tests for the ILP formulation: variable/row construction, the
// two-pin merge, encode/extract round trips, region pruning, separation,
// and eager-vs-lazy equivalence on small instances.
#include "core/formulation.h"

#include <gtest/gtest.h>

#include "core/opt_router.h"
#include "route/maze_router.h"
#include "test_clips.h"

namespace optr::core {
namespace {

using clip::TrackPoint;
using testing::makeSimpleClip;
using testing::randomClip;

tech::Technology techOf(const clip::Clip& c) {
  return tech::Technology::byName(c.techName).value();
}

TEST(Formulation, TwoPinNetsShareOneColumnPerArc) {
  auto c = makeSimpleClip(4, 3, 2, {{{0, 0, 0}, {3, 0, 0}}});
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  Formulation f(c, g, {});
  for (int a = 0; a < g.numArcs(); ++a) {
    if (f.eVar(0, a) < 0) continue;
    EXPECT_EQ(f.eVar(0, a), f.fVar(0, a));
  }
}

TEST(Formulation, MultiPinNetsGetSeparateFlowColumns) {
  auto c = makeSimpleClip(4, 3, 2, {{{0, 0, 0}, {3, 0, 0}, {0, 2, 0}}});
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  Formulation f(c, g, {});
  bool sawSplit = false;
  for (int a = 0; a < g.numArcs(); ++a) {
    if (f.eVar(0, a) < 0) continue;
    EXPECT_NE(f.eVar(0, a), f.fVar(0, a));
    sawSplit = true;
    // e binary, f continuous with ub = |Tk| = 2.
    EXPECT_TRUE(f.integrality()[f.eVar(0, a)]);
    EXPECT_FALSE(f.integrality()[f.fVar(0, a)]);
    EXPECT_DOUBLE_EQ(f.model().upper(f.fVar(0, a)), 2.0);
  }
  EXPECT_TRUE(sawSplit);
}

TEST(Formulation, BlockedVerticesRemoveArcs) {
  auto c = makeSimpleClip(4, 1, 1, {{{0, 0, 0}, {3, 0, 0}}});
  c.obstacles.push_back({1, 0, 0});
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  Formulation f(c, g, {});
  int blockedVertex = g.vertexId(1, 0, 0);
  for (int a = 0; a < g.numArcs(); ++a) {
    const grid::Arc& arc = g.arc(a);
    if (arc.from == blockedVertex || arc.to == blockedVertex) {
      EXPECT_LT(f.eVar(0, a), 0);
    }
  }
}

TEST(Formulation, RegionPruningShrinksTheModel) {
  auto c = randomClip(3, 6, 6, 3, 3);
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  Formulation full(c, g, {});
  FormulationOptions pruned;
  pruned.netBBoxMargin = 1;
  pruned.netLayerMargin = 0;
  Formulation small(c, g, pruned);
  EXPECT_LT(small.stats().numVariables, full.stats().numVariables);
  EXPECT_LT(small.stats().numRows, full.stats().numRows);
}

TEST(Formulation, EncodeRoundTripsMazeSolution) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = randomClip(seed, 5, 5, 3, 3);
    auto techn = techOf(c);
    tech::RuleConfig rule;
    grid::RoutingGraph g(c, techn, rule);
    route::MazeRouter maze(c, g);
    auto mr = maze.route();
    if (!mr.success) continue;
    Formulation f(c, g, {});
    std::vector<double> x = f.encode(mr.solution);
    ASSERT_FALSE(x.empty()) << "seed " << seed;
    EXPECT_TRUE(f.model().isFeasible(x, 1e-6)) << "seed " << seed;
    // Objective equals the solution's cost.
    EXPECT_NEAR(f.model().objectiveValue(x), mr.solution.totalCost(g), 1e-6);
    // Extraction inverts encoding.
    route::RouteSolution back = f.extractSolution(x);
    EXPECT_EQ(back.usedArcs, mr.solution.usedArcs) << "seed " << seed;
  }
}

TEST(Formulation, EncodeRejectsForeignArcs) {
  auto c = makeSimpleClip(4, 1, 1, {{{0, 0, 0}, {3, 0, 0}}});
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  FormulationOptions fo;
  fo.netBBoxMargin = 0;  // net restricted to y == 0 row
  Formulation f(c, g, fo);
  // Hand a "solution" using an arc the formulation pruned away: none exists
  // in-row, so fabricate an empty-net solution (open) -- encode fails on the
  // unreached sink.
  route::RouteSolution sol;
  sol.usedArcs.assign(1, {});
  EXPECT_TRUE(f.encode(sol).empty());
}

TEST(Formulation, SeparatorRejectsNothingOnCleanSolution) {
  auto c = makeSimpleClip(5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}});
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  route::MazeRouter maze(c, g);
  auto mr = maze.route();
  ASSERT_TRUE(mr.success);
  Formulation f(c, g, {});
  std::vector<double> x = f.encode(mr.solution);
  ASSERT_FALSE(x.empty());
  EXPECT_EQ(f.separate(x, f.model()), 0);
}

TEST(Formulation, StatsAreConsistent) {
  auto c = randomClip(5, 5, 5, 3, 3);
  auto techn = techOf(c);
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  Formulation f(c, g, {});
  EXPECT_EQ(f.stats().numVariables, f.model().numCols());
  EXPECT_EQ(f.stats().numRows, f.model().numRows());
  EXPECT_GT(f.stats().numIntegerVars, 0);
  EXPECT_LE(f.stats().numIntegerVars, f.stats().numVariables);
}

// Eager and lazy formulations must agree on the optimum (or infeasibility)
// for every rule configuration -- this is the equivalence claim behind the
// default lazy mode.
class EagerLazyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

TEST_P(EagerLazyEquivalence, SameOptimalCost) {
  auto [seed, ruleName] = GetParam();
  auto c = randomClip(seed, 4, 4, 3, 2);
  auto techn = techOf(c);
  auto rule = tech::ruleByName(ruleName).value();

  OptRouterOptions lazy, eager;
  // Eager SADP is much slower even on tiny clips (the point of the lazy
  // default); a modest limit keeps the suite fast -- the test logic treats
  // limit-hits as unproven rather than as mismatches.
  lazy.mip.timeLimitSec = eager.mip.timeLimitSec = 20;
  lazy.formulation.eagerViaRules = false;
  lazy.formulation.eagerSadp = false;
  eager.formulation.eagerViaRules = true;
  eager.formulation.eagerSadp = true;

  auto rl = OptRouter(techn, rule, lazy).route(c);
  auto re = OptRouter(techn, rule, eager).route(c);

  // Equivalence claim: both modes describe the same feasible set. A mode
  // that hits its time limit may be unproven, but outright contradictions
  // (optimal vs infeasible, or a "feasible" cost below the other's proven
  // optimum) are formulation bugs.
  auto contradiction = [&](const RouteResult& a, const RouteResult& b) {
    return a.status == RouteStatus::kOptimal &&
           b.status == RouteStatus::kInfeasible;
  };
  EXPECT_FALSE(contradiction(rl, re) || contradiction(re, rl))
      << "seed " << seed << " " << ruleName << ": lazy "
      << toString(rl.status) << " vs eager " << toString(re.status);
  if (rl.status == RouteStatus::kOptimal &&
      re.status == RouteStatus::kOptimal) {
    EXPECT_NEAR(rl.cost, re.cost, 1e-6) << "seed " << seed << " " << ruleName;
  } else if (rl.status == RouteStatus::kOptimal && re.hasSolution()) {
    EXPECT_GE(re.cost, rl.cost - 1e-6) << "seed " << seed << " " << ruleName;
  } else if (re.status == RouteStatus::kOptimal && rl.hasSolution()) {
    EXPECT_GE(rl.cost, re.cost - 1e-6) << "seed " << seed << " " << ruleName;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EagerLazyEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 7),
                       ::testing::Values("RULE2", "RULE6", "RULE9")));

}  // namespace
}  // namespace optr::core
