// Tests for the rule-evaluation framework (the paper's Figure 6 flow as a
// library API).
#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_clips.h"

namespace optr::core {
namespace {

using testing::randomClip;

EvaluationOptions fastOptions(std::vector<tech::RuleConfig> rules) {
  EvaluationOptions eo;
  eo.router.mip.timeLimitSec = 8;
  eo.rules = std::move(rules);
  return eo;
}

std::vector<tech::RuleConfig> rulesByName(std::initializer_list<const char*> names) {
  std::vector<tech::RuleConfig> out;
  for (const char* n : names) out.push_back(tech::ruleByName(n).value());
  return out;
}

TEST(RuleEvaluator, ReferenceRuleHasZeroDeltas) {
  std::vector<clip::Clip> clips = {randomClip(3), randomClip(4)};
  RuleEvaluator ev(tech::Technology::n28_12t(),
                   fastOptions(rulesByName({"RULE1", "RULE6"})));
  auto res = ev.evaluate(clips);
  const RuleOutcome* r1 = res.byName("RULE1");
  ASSERT_NE(r1, nullptr);
  for (double d : r1->sortedDelta) {
    if (std::isfinite(d)) EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(RuleEvaluator, DeltasAreNonNegativeAndSorted) {
  std::vector<clip::Clip> clips = {randomClip(5), randomClip(6)};
  RuleEvaluator ev(tech::Technology::n28_12t(),
                   fastOptions(rulesByName({"RULE1", "RULE6", "RULE3"})));
  auto res = ev.evaluate(clips);
  for (const RuleOutcome& ro : res.rules) {
    double prev = -1;
    for (double d : ro.sortedDelta) {
      EXPECT_GE(d, 0.0);
      EXPECT_GE(d, prev);
      prev = d;
    }
    EXPECT_EQ(ro.feasible + ro.infeasible + ro.unresolved,
              static_cast<int>(clips.size()));
  }
}

TEST(RuleEvaluator, InapplicableRulesAreSkipped) {
  std::vector<clip::Clip> clips = {randomClip(9)};
  clips[0].techName = "N7-9T";
  RuleEvaluator ev(tech::Technology::n7_9t(),
                   fastOptions(rulesByName({"RULE1", "RULE9"})));
  auto res = ev.evaluate(clips);
  const RuleOutcome* r9 = res.byName("RULE9");
  ASSERT_NE(r9, nullptr);
  EXPECT_FALSE(r9->applicable);
  EXPECT_TRUE(r9->clips.empty());
}

TEST(RuleEvaluator, InfeasibleClipsBecomeInfiniteDeltas) {
  // One provably unroutable-under-RULE6 pattern plus one easy clip.
  // Easy clip: straight net. Hard: crossing nets on a single row/layer is
  // infeasible under every rule, so the reference also fails -> excluded.
  // Instead craft a clip feasible under RULE1 but not under RULE9: two nets
  // that must both drop vias in a 2x2 area.
  auto c = testing::makeSimpleClip(
      2, 3, 2, {{{0, 0, 0}, {0, 2, 0}}, {{1, 0, 0}, {1, 2, 0}}});
  RuleEvaluator ev(tech::Technology::n28_12t(),
                   fastOptions(rulesByName({"RULE1", "RULE9"})));
  auto res = ev.evaluate({c});
  const RuleOutcome* r1 = res.byName("RULE1");
  const RuleOutcome* r9 = res.byName("RULE9");
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r9, nullptr);
  ASSERT_EQ(r1->feasible, 1);  // routable with unrestricted vias
  if (r9->infeasible == 1) {
    ASSERT_EQ(r9->sortedDelta.size(), 1u);
    EXPECT_TRUE(std::isinf(r9->sortedDelta[0]));
  }
}

TEST(RuleEvaluator, OutcomesCarrySolveMetadata) {
  std::vector<clip::Clip> clips = {randomClip(11)};
  RuleEvaluator ev(tech::Technology::n28_12t(),
                   fastOptions(rulesByName({"RULE1"})));
  auto res = ev.evaluate(clips);
  ASSERT_EQ(res.reference.size(), 1u);
  const ClipOutcome& o = res.reference[0];
  if (o.status == RouteStatus::kOptimal) {
    EXPECT_GT(o.cost, 0);
    EXPECT_EQ(o.cost, o.wirelength + 4.0 * o.vias);
    EXPECT_NEAR(o.bestBound, o.cost, 1e-6);
  }
}

TEST(RuleEvaluator, ClipThreadPoolMatchesSerialEvaluation) {
  // Tiny deterministic clips that solve in milliseconds: the point is pool
  // plumbing (task order, outcome equality), not solver stress, and this
  // test also runs under TSan where solves are ~15x slower. Six clips vs
  // four workers makes the task cursor actually queue work.
  std::vector<clip::Clip> clips = {
      testing::makeSimpleClip(3, 3, 2,
                              {{{0, 0, 0}, {0, 2, 0}}, {{2, 0, 0}, {2, 2, 0}}}),
      testing::makeSimpleClip(3, 3, 2,
                              {{{0, 1, 0}, {2, 1, 0}}, {{1, 0, 0}, {1, 2, 0}}}),
      testing::makeSimpleClip(3, 3, 3,
                              {{{0, 0, 0}, {2, 2, 0}}, {{2, 0, 0}, {0, 2, 0}}}),
      testing::makeSimpleClip(4, 4, 2,
                              {{{0, 0, 0}, {3, 0, 0}},
                               {{0, 3, 0}, {3, 3, 0}},
                               {{0, 1, 0}, {0, 2, 0}}}),
      testing::makeSimpleClip(4, 4, 3,
                              {{{1, 0, 0}, {1, 3, 0}}, {{0, 2, 0}, {3, 2, 0}}}),
      testing::makeSimpleClip(3, 4, 2,
                              {{{0, 0, 0}, {2, 0, 0}}, {{0, 3, 0}, {2, 3, 0}}}),
  };
  EvaluationOptions serialOpt = fastOptions(rulesByName({"RULE1", "RULE6"}));
  // Outcome equality only holds for solves the deadline never truncates --
  // with N solves sharing the machine (worse under sanitizers), a short
  // limit fires in the parallel pass but not the serial one. Give the
  // solves room so every pass completes every solve.
  serialOpt.router.mip.timeLimitSec = 300;
  auto serial =
      RuleEvaluator(tech::Technology::n28_12t(), serialOpt).evaluate(clips);

  EvaluationOptions parOpt = serialOpt;
  parOpt.clipThreads = 4;
  auto par =
      RuleEvaluator(tech::Technology::n28_12t(), parOpt).evaluate(clips);

  ASSERT_EQ(par.rules.size(), serial.rules.size());
  for (std::size_t ri = 0; ri < serial.rules.size(); ++ri) {
    const RuleOutcome& s = serial.rules[ri];
    const RuleOutcome& p = par.rules[ri];
    EXPECT_EQ(p.feasible, s.feasible) << s.rule.name;
    EXPECT_EQ(p.infeasible, s.infeasible) << s.rule.name;
    EXPECT_EQ(p.unresolved, s.unresolved) << s.rule.name;
    ASSERT_EQ(p.clips.size(), s.clips.size()) << s.rule.name;
    for (std::size_t i = 0; i < s.clips.size(); ++i) {
      // Outcomes stay in clip order and (deterministic solves) identical.
      EXPECT_EQ(p.clips[i].status, s.clips[i].status) << i;
      EXPECT_EQ(p.clips[i].provenance, s.clips[i].provenance) << i;
      EXPECT_EQ(p.clips[i].cost, s.clips[i].cost) << i;
    }
    ASSERT_EQ(p.sortedDelta.size(), s.sortedDelta.size());
    for (std::size_t i = 0; i < s.sortedDelta.size(); ++i) {
      EXPECT_EQ(p.sortedDelta[i], s.sortedDelta[i]) << i;
    }
  }
}

}  // namespace
}  // namespace optr::core
