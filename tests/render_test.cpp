// Tests for the ASCII layout renderer.
#include "route/render.h"

#include <gtest/gtest.h>

#include "route/maze_router.h"
#include "test_clips.h"

namespace optr::route {
namespace {

using testing::makeSimpleClip;

TEST(Render, ShowsPinsObstaclesAndLegend) {
  auto c = makeSimpleClip(5, 4, 2, {{{0, 0, 0}, {4, 0, 0}}});
  c.obstacles.push_back({2, 2, 0});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  std::string out = renderClip(c, g, nullptr);
  EXPECT_NE(out.find('A'), std::string::npos);   // net 0 pins
  EXPECT_NE(out.find('#'), std::string::npos);   // obstacle
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("M2 (horizontal)"), std::string::npos);
  EXPECT_NE(out.find("M3 (vertical)"), std::string::npos);
}

TEST(Render, ShowsRoutedWiresAndVias) {
  auto c = makeSimpleClip(3, 4, 2, {{{1, 0, 0}, {1, 3, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  MazeRouter maze(c, g);
  auto mr = maze.route();
  ASSERT_TRUE(mr.success);
  std::string out = renderClip(c, g, &mr.solution);
  EXPECT_NE(out.find('+'), std::string::npos);  // vias for the layer hop
  EXPECT_NE(out.find('|'), std::string::npos);  // vertical segment on M3
}

TEST(Render, BoundaryPinsUseLowercase) {
  auto c = makeSimpleClip(4, 4, 2, {{{0, 0, 0}, {3, 3, 1}}});
  c.pins[1].isBoundary = true;
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  std::string out = renderClip(c, g, nullptr);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('A'), std::string::npos);
}

}  // namespace
}  // namespace optr::route
