// Independent optimality validation: on tiny clips, enumerate every simple
// routing (DFS path enumeration per two-pin net, cross product across nets,
// DRC-filtered) and verify OptRouter returns exactly the brute-force
// optimum -- or proves infeasibility exactly when no combination passes.
//
// This check shares no code with the LP/MIP stack except the DRC checker,
// so it independently validates the formulation + solver end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "core/opt_router.h"
#include "route/drc.h"
#include "test_clips.h"

namespace optr::core {
namespace {

using clip::TrackPoint;
using testing::makeSimpleClip;

/// All simple directed paths from any source AP to any sink AP with cost at
/// most maxCost. Paths are arc-id sets.
std::vector<std::vector<int>> enumeratePaths(const grid::RoutingGraph& g,
                                             const clip::Clip& c, int net,
                                             double maxCost) {
  std::vector<std::vector<int>> out;
  const clip::ClipNet& cn = c.nets[net];
  std::vector<char> isSink(g.numVertices(), 0);
  for (const TrackPoint& ap : c.pins[cn.pins[1]].accessPoints)
    isSink[g.vertexId(ap)] = 1;

  std::vector<int> path;
  std::vector<char> visited(g.numVertices(), 0);
  std::function<void(int, double)> dfs = [&](int v, double cost) {
    if (isSink[v] && !path.empty()) {
      out.push_back(path);
      return;  // extending past a sink never helps a 2-pin net
    }
    if (cost >= maxCost) return;
    for (int a : g.outArcs(v)) {
      const grid::Arc& arc = g.arc(a);
      if (visited[arc.to]) continue;
      if (!g.usableBy(arc.to, net)) continue;
      visited[arc.to] = 1;
      path.push_back(a);
      dfs(arc.to, cost + arc.cost);
      path.pop_back();
      visited[arc.to] = 0;
    }
  };
  for (const TrackPoint& ap : c.pins[cn.pins[0]].accessPoints) {
    int v = g.vertexId(ap);
    if (!g.usableBy(v, net)) continue;
    visited.assign(g.numVertices(), 0);
    visited[v] = 1;
    dfs(v, 0);
  }
  return out;
}

/// Brute-force optimum over all per-net path combinations; infinity when no
/// combination is DRC-clean.
double bruteForceOptimum(const clip::Clip& c, const grid::RoutingGraph& g,
                         double maxPathCost) {
  route::DrcChecker drc(c, g);
  std::vector<std::vector<std::vector<int>>> perNet;
  for (std::size_t n = 0; n < c.nets.size(); ++n)
    perNet.push_back(enumeratePaths(g, c, static_cast<int>(n), maxPathCost));

  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> choice(perNet.size(), 0);
  std::function<void(std::size_t, double)> combine = [&](std::size_t n,
                                                         double costSoFar) {
    if (costSoFar >= best) return;
    if (n == perNet.size()) {
      route::RouteSolution sol;
      sol.usedArcs.resize(perNet.size());
      for (std::size_t k = 0; k < perNet.size(); ++k)
        sol.usedArcs[k] = perNet[k][choice[k]];
      sol.normalize();
      if (drc.check(sol).empty()) best = std::min(best, costSoFar);
      return;
    }
    for (std::size_t i = 0; i < perNet[n].size(); ++i) {
      choice[n] = i;
      double cost = 0;
      for (int a : perNet[n][i]) cost += g.arc(a).cost;
      combine(n + 1, costSoFar + cost);
    }
  };
  bool anyEmpty = false;
  for (const auto& paths : perNet) anyEmpty |= paths.empty();
  if (!anyEmpty) combine(0, 0);
  return best;
}

class BruteForce
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

/// Tiny clip with exactly two 2-pin nets on distinct vertices.
clip::Clip tinyClip(std::uint64_t seed) {
  Rng rng(seed * 31 + 5);
  std::vector<clip::TrackPoint> pts;
  while (pts.size() < 4) {
    clip::TrackPoint p{static_cast<int>(rng.uniformInt(0, 2)),
                       static_cast<int>(rng.uniformInt(0, 2)), 0};
    bool dup = false;
    for (const auto& q : pts) dup |= (q == p);
    if (!dup) pts.push_back(p);
  }
  return makeSimpleClip(3, 3, 2, {{pts[0], pts[1]}, {pts[2], pts[3]}});
}

TEST_P(BruteForce, OptRouterMatchesExhaustiveSearch) {
  auto [seed, ruleName] = GetParam();
  // Tiny instances keep enumeration tractable: 2 two-pin nets, 3x3x2.
  auto c = tinyClip(seed);
  auto techn = tech::Technology::byName(c.techName).value();
  auto rule = tech::ruleByName(ruleName).value();
  grid::RoutingGraph g(c, techn, rule);

  double brute = bruteForceOptimum(c, g, /*maxPathCost=*/26.0);

  OptRouterOptions o;
  o.mip.timeLimitSec = 30;
  auto r = OptRouter(techn, rule, o).route(c);

  if (std::isinf(brute)) {
    // No path combination under the cost cap is clean. OptRouter may still
    // find a longer (cap-exceeding) routing, but must never be worse than
    // any enumerated option -- and infeasible is consistent.
    if (r.status == RouteStatus::kOptimal) {
      EXPECT_GE(r.cost, 26.0 - 1e-6)
          << "OptRouter found a cheap routing brute force should have seen";
    }
  } else {
    ASSERT_EQ(r.status, RouteStatus::kOptimal)
        << "seed " << seed << " " << ruleName << " brute=" << brute;
    EXPECT_NEAR(r.cost, brute, 1e-6) << "seed " << seed << " " << ruleName;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BruteForce,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 13),
                       ::testing::Values("RULE1", "RULE6", "RULE9",
                                         "RULE2")));

}  // namespace
}  // namespace optr::core
