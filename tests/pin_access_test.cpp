// Tests for the automated pin-access analysis (Section 4.1 reproduction).
#include "layout/pin_access.h"

#include <gtest/gtest.h>

#include "grid/routing_graph.h"

namespace optr::layout {
namespace {

TEST(PinAccess, AccessClipIsWellFormed) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  const CellMaster* nand2 = lib.byName("NAND2X1");
  ASSERT_NE(nand2, nullptr);
  clip::Clip c = buildAccessClip(lib, *nand2);
  EXPECT_TRUE(c.validate().isOk());
  EXPECT_EQ(c.nets.size(), nand2->pins.size());
  // One escape pin per net, virtual and boundary-flagged.
  int virtualPins = 0;
  for (const clip::ClipPin& p : c.pins) {
    if (p.isVirtual) {
      ++virtualPins;
      EXPECT_TRUE(p.isBoundary);
      EXPECT_GT(p.accessPoints.size(), 10u);  // whole-layer escape
    }
  }
  EXPECT_EQ(virtualPins, static_cast<int>(nand2->pins.size()));
}

TEST(PinAccess, VirtualPinsDoNotReserveVertices) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  clip::Clip c = buildAccessClip(lib, *lib.byName("INVX1"));
  grid::RoutingGraph g(c, lib.technology(), tech::RuleConfig{});
  // The escape layer must remain mostly free despite two whole-layer
  // "pins" overlapping there.
  int freeOnEscape = 0;
  for (int y = 0; y < c.tracksY; ++y) {
    for (int x = 0; x < c.tracksX; ++x) {
      if (g.vertexOwner(g.vertexId(x, y, 2)) == grid::kVertexFree)
        ++freeOnEscape;
    }
  }
  EXPECT_EQ(freeOnEscape, c.tracksX * c.tracksY);
}

TEST(PinAccess, WidePinsAccessibleWithoutRestrictions) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  auto res = checkPinAccess(lib, *lib.byName("NAND2X1"),
                            tech::ruleByName("RULE1").value(), 30.0);
  EXPECT_TRUE(res.feasible);
}

TEST(PinAccess, CompactPinsAccessibleWithoutRestrictions) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n7_9t());
  auto res = checkPinAccess(lib, *lib.byName("NAND2X1"),
                            tech::ruleByName("RULE1").value(), 30.0);
  EXPECT_TRUE(res.feasible);
}

TEST(PinAccess, RestrictionNeverImprovesEscapeCost) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  auto r1 = checkPinAccess(lib, *lib.byName("INVX1"),
                           tech::ruleByName("RULE1").value(), 30.0);
  auto r9 = checkPinAccess(lib, *lib.byName("INVX1"),
                           tech::ruleByName("RULE9").value(), 30.0);
  ASSERT_TRUE(r1.feasible);
  if (r9.feasible && r1.proven && r9.proven) {
    EXPECT_GE(r9.cost, r1.cost - 1e-9);
  }
}

}  // namespace
}  // namespace optr::layout
