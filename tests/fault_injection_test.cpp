// Fault-injection coverage of the recovery ladder: every injected solver
// fault must produce a degraded-but-valid result -- correct taxonomy code,
// honest provenance, DRC-clean solution (or none) -- and, with injection
// disarmed, behavior must be bit-identical to a clean run.
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/opt_router.h"
#include "harness/sweep_coordinator.h"
#include "lp/simplex.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_read.h"
#include "route/drc.h"
#include "tech/technology.h"
#include "test_clips.h"

namespace optr {
namespace {

using clip::TrackPoint;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  static clip::Clip testClip() {
    // Two crossing nets: forces layer changes, a non-trivial ILP.
    return testing::makeSimpleClip(
        5, 5, 3,
        {{TrackPoint{0, 0, 0}, TrackPoint{4, 4, 0}},
         {TrackPoint{0, 4, 0}, TrackPoint{4, 0, 0}}});
  }

  static core::OptRouterOptions routerOptions() {
    core::OptRouterOptions opt;
    opt.mip.timeLimitSec = 30.0;
    // Small clips rarely hit the default interval; force frequent
    // refactorization so the kSingularBasis probe is reachable.
    opt.mip.lpOptions.refactorInterval = 4;
    return opt;
  }

  static core::RouteResult route(const clip::Clip& c,
                                 core::OptRouterOptions opt) {
    auto techn = tech::Technology::byName(c.techName).value();
    auto rule = tech::ruleByName("RULE1").value();
    return core::OptRouter(techn, rule, opt).route(c);
  }

  static void expectDrcClean(const clip::Clip& c,
                             const core::RouteResult& res) {
    auto techn = tech::Technology::byName(c.techName).value();
    auto rule = tech::ruleByName("RULE1").value();
    grid::RoutingGraph graph(c, techn, rule);
    route::DrcChecker drc(c, graph);
    EXPECT_TRUE(drc.check(res.solution).empty());
  }
};

TEST_F(FaultInjectionTest, CountdownAndRepeatSemantics) {
  fault::arm(fault::Site::kDualDrift, /*countdown=*/2, /*times=*/2);
  EXPECT_FALSE(fault::fire(fault::Site::kDualDrift));
  EXPECT_FALSE(fault::fire(fault::Site::kDualDrift));
  EXPECT_TRUE(fault::fire(fault::Site::kDualDrift));
  EXPECT_TRUE(fault::fire(fault::Site::kDualDrift));
  EXPECT_FALSE(fault::fire(fault::Site::kDualDrift));
  EXPECT_EQ(fault::fireCount(fault::Site::kDualDrift), 2);
  // Sites are independent.
  EXPECT_FALSE(fault::fire(fault::Site::kSingularBasis));
  fault::reset();
  EXPECT_FALSE(fault::anyArmed());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault f(fault::Site::kLpDeadline, 0, fault::kAlways);
    EXPECT_TRUE(fault::anyArmed());
    EXPECT_TRUE(fault::fire(fault::Site::kLpDeadline));
    EXPECT_EQ(f.fired(), 1);
  }
  EXPECT_FALSE(fault::anyArmed());
  EXPECT_FALSE(fault::fire(fault::Site::kLpDeadline));
}

TEST_F(FaultInjectionTest, DisarmedRunsAreDeterministic) {
  clip::Clip c = testClip();
  core::RouteResult a = route(c, routerOptions());
  core::RouteResult b = route(c, routerOptions());
  ASSERT_EQ(a.status, core::RouteStatus::kOptimal);
  EXPECT_EQ(a.provenance, core::Provenance::kIlpProven);
  EXPECT_TRUE(a.error.isOk());
  EXPECT_EQ(a.cost, b.cost);  // bit-identical, not just approximately
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.vias, b.vias);
  EXPECT_EQ(a.lpIterations, b.lpIterations);
  EXPECT_EQ(a.solverRetries, 0);
}

TEST_F(FaultInjectionTest, SingleSingularBasisIsRetriedTransparently) {
  clip::Clip c = testClip();
  core::RouteResult clean = route(c, routerOptions());
  ASSERT_EQ(clean.status, core::RouteStatus::kOptimal);

  fault::ScopedFault f(fault::Site::kSingularBasis, 0, 1);
  core::RouteResult res = route(c, routerOptions());
  EXPECT_EQ(f.fired(), 1);
  // The ladder's first rung absorbs the failure: same proven optimum.
  EXPECT_EQ(res.status, core::RouteStatus::kOptimal);
  EXPECT_EQ(res.provenance, core::Provenance::kIlpProven);
  EXPECT_EQ(res.cost, clean.cost);
  expectDrcClean(c, res);
}

TEST_F(FaultInjectionTest, PersistentSingularBasisFallsBackToIncumbent) {
  clip::Clip c = testClip();
  core::RouteResult clean = route(c, routerOptions());
  ASSERT_EQ(clean.status, core::RouteStatus::kOptimal);

  // Every refactorization fails: the ILP cannot run at all, so the ladder
  // must hand back the warm-start incumbent -- validated, honestly tagged.
  fault::ScopedFault f(fault::Site::kSingularBasis, 0, fault::kAlways);
  core::RouteResult res = route(c, routerOptions());
  EXPECT_GE(f.fired(), 2);  // original attempt + Bland-rule retry
  ASSERT_TRUE(res.hasSolution());
  EXPECT_EQ(res.status, core::RouteStatus::kFeasible);
  EXPECT_EQ(res.provenance, core::Provenance::kIlpIncumbent);
  EXPECT_EQ(res.error.code(), ErrorCode::kSingularBasis);
  EXPECT_GE(res.solverRetries, 1);
  // Degraded, never wrong: at least as costly as the proven optimum, and
  // rule-clean.
  EXPECT_GE(res.cost, clean.cost);
  expectDrcClean(c, res);
}

TEST_F(FaultInjectionTest, PersistentFailureWithoutWarmStartUsesMazeRung) {
  clip::Clip c = testClip();
  core::RouteResult clean = route(c, routerOptions());
  ASSERT_EQ(clean.status, core::RouteStatus::kOptimal);

  core::OptRouterOptions opt = routerOptions();
  opt.warmStart = false;  // no incumbent rung available
  fault::ScopedFault f(fault::Site::kSingularBasis, 0, fault::kAlways);
  core::RouteResult res = route(c, opt);
  EXPECT_GE(f.fired(), 2);
  ASSERT_TRUE(res.hasSolution());
  EXPECT_EQ(res.provenance, core::Provenance::kMazeFallback);
  EXPECT_EQ(res.status, core::RouteStatus::kFeasible);
  EXPECT_EQ(res.error.code(), ErrorCode::kSingularBasis);
  EXPECT_GE(res.cost, clean.cost);
  expectDrcClean(c, res);
}

TEST_F(FaultInjectionTest, LpDeadlineFaultDegradesWithDeadlineCode) {
  clip::Clip c = testClip();
  core::RouteResult clean = route(c, routerOptions());
  ASSERT_EQ(clean.status, core::RouteStatus::kOptimal);

  // Deadline expires on every pivot: the search is truncated immediately.
  fault::ScopedFault f(fault::Site::kLpDeadline, 0, fault::kAlways);
  core::RouteResult res = route(c, routerOptions());
  EXPECT_GE(f.fired(), 1);
  EXPECT_EQ(res.error.code(), ErrorCode::kDeadline);
  ASSERT_TRUE(res.hasSolution());  // warm-start incumbent or maze fallback
  EXPECT_NE(res.provenance, core::Provenance::kIlpProven);
  EXPECT_GE(res.cost, clean.cost);
  expectDrcClean(c, res);
}

TEST_F(FaultInjectionTest, DualDriftIsRepairedByRepricing) {
  // LP-level: corrupt the incremental duals mid-solve; the post-solve
  // re-pricing pass must detect the bogus "optimal" and keep pivoting.
  Rng rng(17);
  lp::LpModel m;
  for (int cidx = 0; cidx < 12; ++cidx) {
    m.addColumn(-1.0 - 0.01 * static_cast<double>(rng.uniform(9)), 0, 1);
  }
  for (int r = 0; r < 12; ++r) {
    lp::RowBuilder rb;
    for (int cidx = 0; cidx < 12; ++cidx) {
      if (rng.chance(0.5)) {
        rb.add(cidx, 1.0 + static_cast<double>(rng.uniform(3)));
      }
    }
    rb.sense = lp::RowSense::kLe;
    rb.rhs = static_cast<double>(2 + rng.uniform(3));
    m.addRow(rb);
  }

  lp::SimplexSolver solver;
  lp::LpResult clean = solver.solve(m);
  ASSERT_EQ(clean.status, lp::LpStatus::kOptimal);

  fault::ScopedFault f(fault::Site::kDualDrift, /*countdown=*/1, /*times=*/1);
  lp::SimplexSolver faulted;
  lp::LpResult res = faulted.solve(m);
  EXPECT_EQ(f.fired(), 1);
  ASSERT_EQ(res.status, lp::LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, clean.objective, 1e-9);
}

TEST_F(FaultInjectionTest, InjectedFaultsAreTracedWithRecoveryCausality) {
  // Every injected fault must leave a fault.fired trace event, so a trace
  // can prove the injection -> recovery chain: the mip.retry event that
  // absorbs a singular basis has to come *after* the fault that caused it,
  // inside the same solve. Also checks the fault.injected counter.
  clip::Clip c = testClip();
  const std::string path = ::testing::TempDir() + "/fault_trace.jsonl";
  const std::int64_t injectedBefore =
      obs::metrics().counter("fault.injected").value();

  ASSERT_TRUE(obs::TraceSession::start(path).isOk());
  fault::ScopedFault f(fault::Site::kSingularBasis, 0, 1);
  core::RouteResult res = route(c, routerOptions());
  obs::TraceSession::stop();

  ASSERT_EQ(f.fired(), 1);
  EXPECT_EQ(res.status, core::RouteStatus::kOptimal);
  EXPECT_EQ(
      obs::metrics().counter("fault.injected").value() - injectedBefore, 1);

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  const obs::TraceEntry* fired = nullptr;
  const obs::TraceEntry* retry = nullptr;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "fault.fired" && !fired) fired = &e;
    if (e.name == "mip.retry" && !retry) retry = &e;
  }
  ASSERT_NE(fired, nullptr) << "injected fault left no trace event";
  ASSERT_NE(retry, nullptr) << "recovery left no trace event";
  EXPECT_EQ(fired->detail, "singular-basis");
  // Causality: the fault precedes the retry that recovers from it.
  EXPECT_LE(fired->ts, retry->ts);
}

TEST_F(FaultInjectionTest, FleetWorkerCrashIsTracedWithRecoveryCausality) {
  // Cross-process causality: the fault fires inside a forked worker (which
  // flushes its trace rings before _exit), the recovery -- death detection
  // and lease re-assignment -- happens in the coordinator. Trace timestamps
  // are absolute steady-clock ns rebased to the shared session t0, so the
  // ordering injection -> death -> re-assignment is assertable from one
  // merged trace file.
  const std::string path = ::testing::TempDir() + "/fleet_fault_trace.jsonl";
  ASSERT_TRUE(obs::TraceSession::start(path).isOk());

  harness::SweepCoordinatorOptions opt;
  opt.router.mip.timeLimitSec = 20.0;
  opt.workers = 1;
  opt.workerInitHook = [](int /*slot*/, int generation) {
    if (generation == 0) {
      fault::arm(fault::Site::kWorkerCrash, /*countdown=*/0, /*times=*/1);
    }
  };
  std::vector<clip::Clip> clips = {testClip()};
  std::vector<tech::RuleConfig> rules = {tech::ruleByName("RULE1").value()};
  harness::FleetReport report = harness::SweepCoordinator(opt).run(clips, rules);
  obs::TraceSession::stop();

  ASSERT_TRUE(report.status.isOk()) << report.status.message();
  EXPECT_GE(report.workerDeaths, 1);
  EXPECT_GE(report.leasesReassigned, 1);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].status, core::RouteStatus::kOptimal);

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  const obs::TraceEntry* fired = nullptr;
  const obs::TraceEntry* death = nullptr;
  const obs::TraceEntry* reassigned = nullptr;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "fault.fired" && e.detail == "worker-crash" && !fired) {
      fired = &e;
    }
    if (e.name == "fleet.worker.death" && !death) death = &e;
    if (e.name == "fleet.lease.reassigned" && !reassigned) reassigned = &e;
  }
  ASSERT_NE(fired, nullptr) << "worker-side fault left no trace event";
  ASSERT_NE(death, nullptr) << "death detection left no trace event";
  ASSERT_NE(reassigned, nullptr) << "re-assignment left no trace event";
  EXPECT_LE(fired->ts, death->ts);
  EXPECT_LE(death->ts, reassigned->ts);
}

TEST_F(FaultInjectionTest, CleanRunAfterFaultsMatchesBaseline) {
  clip::Clip c = testClip();
  core::RouteResult clean = route(c, routerOptions());
  {
    fault::ScopedFault f(fault::Site::kSingularBasis, 0, fault::kAlways);
    (void)route(c, routerOptions());
  }
  // No sticky state: once disarmed, results are bit-identical again.
  core::RouteResult after = route(c, routerOptions());
  EXPECT_EQ(after.status, clean.status);
  EXPECT_EQ(after.cost, clean.cost);
  EXPECT_EQ(after.lpIterations, clean.lpIterations);
}

}  // namespace
}  // namespace optr
