// ServiceServer end-to-end: a real daemon (unix socket, poll loop, broker
// workers) driven by a real ServiceClient in the same process. The headline
// case is the SIGTERM graceful drain -- an in-flight request must complete
// and its reply reach the client, the trace session must close with its
// footer, and the live metrics export must end with its final row. A second
// case covers the ping/stats frame over the socket.
#include <gtest/gtest.h>

#if !defined(_WIN32)

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clip/clip_io.h"
#include "common/stop_signal.h"
#include "obs/analyze.h"
#include "obs/trace.h"
#include "service/service_client.h"
#include "service/service_server.h"
#include "test_clips.h"

namespace optr {
namespace {

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." + std::to_string(::getpid());
}

service::RouteRequest tinyRequest(const std::string& id) {
  service::RouteRequest req;
  req.id = id;
  req.clipText =
      clip::toText(testing::makeSimpleClip(4, 4, 3, {{{0, 0, 0}, {3, 3, 0}}}));
  req.ruleName = "RULE1";
  return req;
}

service::ServerOptions tinyServer(const std::string& sock) {
  service::ServerOptions so;
  so.listen = "unix:" + sock;
  so.broker.workers = 1;
  so.broker.router.mip.timeLimitSec = 10;
  so.broker.router.mip.threads = 1;
  return so;
}

/// Signal dispositions and the stop flag are process-global; every case must
/// leave them rearmed for the next one.
struct StopSignalGuard {
  ~StopSignalGuard() { common::resetStopSignals(); }
};

TEST(ServiceServer, SigtermDrainsInFlightWorkAndFlushesTelemetry) {
  StopSignalGuard signals;
  const std::string sock = tempPath("srv_drain.sock");
  const std::string tracePath = tempPath("srv_drain_trace.jsonl");
  const std::string metricsPath = tempPath("srv_drain_metrics.jsonl");
  std::remove(sock.c_str());
  std::remove(metricsPath.c_str());

#if OPTR_OBS_ENABLED
  ASSERT_TRUE(obs::TraceSession::start(tracePath).isOk());
#endif
  service::ServerOptions so = tinyServer(sock);
  so.metricsOutPath = metricsPath;
  so.telemetryIntervalSec = 0.01;
  service::ServiceServer server(so);
  ASSERT_TRUE(server.start().isOk());
  // Install the handlers before SIGTERM can possibly fire: run() does this
  // too, but the runner thread may not have reached it yet.
  common::installStopSignals();
  int rc = -1;
  std::thread runner([&] { rc = server.run(); });

  service::ServiceClient client;
  ASSERT_TRUE(client.connect("unix:" + sock).isOk());
  StatusOr<service::RouteReply> reply =
      Status::error(ErrorCode::kUnavailable, "not called");
  std::thread caller(
      [&] { reply = client.call(tinyRequest("draining")); });

  // Wait until the daemon has admitted the request, then pull the plug the
  // way an init system does.
  for (int i = 0; i < 500 && server.broker().stats().accepted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server.broker().stats().accepted, 1u);
  ::kill(::getpid(), SIGTERM);

  runner.join();
  caller.join();
  EXPECT_EQ(rc, 0) << "graceful drain must exit cleanly";
  // The in-flight request completed and its reply crossed the socket.
  ASSERT_TRUE(reply.isOk()) << reply.status().message();
  EXPECT_EQ(reply.value().id, "draining");
  EXPECT_EQ(reply.value().status, core::RouteStatus::kOptimal);
  EXPECT_EQ(server.broker().stats().completed, 1u);

  // The live export closed with its final row despite the signal.
  std::ifstream metrics(metricsPath);
  ASSERT_TRUE(metrics.good()) << "metrics export file missing";
  std::string line, last;
  while (std::getline(metrics, line))
    if (!line.empty()) last = line;
  EXPECT_NE(last.find("\"final\":true"), std::string::npos) << last;

#if OPTR_OBS_ENABLED
  // The trace closed with its footer and recorded the daemon-side request
  // span (the drain ran the broker to completion, not past it).
  obs::TraceSession::stop();
  obs::TraceLoadStats stats;
  auto entriesOr = obs::loadTraces({tracePath}, &stats);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  EXPECT_TRUE(stats.sawFooter);
  bool sawRequestSpan = false;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "service.request") sawRequestSpan = true;
  }
  EXPECT_TRUE(sawRequestSpan);
#endif
}

TEST(ServiceServer, PingOverTheSocketReturnsLiveHistograms) {
  StopSignalGuard signals;
  const std::string sock = tempPath("srv_ping.sock");
  std::remove(sock.c_str());

  service::ServiceServer server(tinyServer(sock));
  ASSERT_TRUE(server.start().isOk());
  int rc = -1;
  std::thread runner([&] { rc = server.run(); });

  service::ServiceClient client;
  ASSERT_TRUE(client.connect("unix:" + sock).isOk());
  StatusOr<service::RouteReply> reply = client.call(tinyRequest("warm"));
  ASSERT_TRUE(reply.isOk()) << reply.status().message();

  StatusOr<service::ServiceStats> statsOr = client.ping();
  ASSERT_TRUE(statsOr.isOk()) << statsOr.status().message();
  const service::ServiceStats& s = statsOr.value();
  EXPECT_GE(s.uptimeSec, 0.0);
  EXPECT_EQ(s.accepted, 1);
  EXPECT_EQ(s.completed, 1);
#if OPTR_OBS_ENABLED
  // Live percentiles over the wire: the solved request must show up with
  // non-zero queue-wait and cold-solve latencies (counts are lower bounds --
  // the histograms are registry-global within this test binary).
  EXPECT_GE(s.queueWait.count, 1);
  EXPECT_GT(s.queueWait.p50Ms, 0.0);
  EXPECT_GE(s.solveCold.count, 1);
  EXPECT_GT(s.solveCold.p50Ms, 0.0);
#endif

  ASSERT_TRUE(client.sendShutdown().isOk());
  runner.join();
  EXPECT_EQ(rc, 0);
}

}  // namespace
}  // namespace optr

#endif  // !_WIN32
