// Tests for the layout substrate: cell library, design generation,
// global routing, and clip extraction.
#include <gtest/gtest.h>

#include <set>

#include "clip/clip.h"
#include "layout/cell_library.h"
#include "layout/clip_extract.h"
#include "layout/design.h"
#include "layout/global_route.h"

namespace optr::layout {
namespace {

TEST(CellLibrary, HasRepresentativeMasters) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  EXPECT_GE(lib.numMasters(), 8);
  ASSERT_NE(lib.byName("NAND2X1"), nullptr);
  ASSERT_NE(lib.byName("DFFX1"), nullptr);
  EXPECT_EQ(lib.byName("NOPE"), nullptr);
}

TEST(CellLibrary, PinStyleControlsAccessPointCount) {
  auto wide = CellLibrary::forTechnology(tech::Technology::n28_12t());
  auto compact = CellLibrary::forTechnology(tech::Technology::n7_9t());
  const CellMaster* w = wide.byName("NAND2X1");
  const CellMaster* c = compact.byName("NAND2X1");
  ASSERT_NE(w, nullptr);
  ASSERT_NE(c, nullptr);
  // Figure 9: 28nm pins have 3+ access points, 7nm pins exactly 2.
  for (const PinTemplate& p : w->pins) EXPECT_GE(p.accessPointsNm.size(), 3u);
  for (const PinTemplate& p : c->pins) EXPECT_EQ(p.accessPointsNm.size(), 2u);
}

TEST(CellLibrary, CompactPinsAreCloserTogether) {
  auto wide = CellLibrary::forTechnology(tech::Technology::n28_12t());
  auto compact = CellLibrary::forTechnology(tech::Technology::n7_9t());
  auto inputSpread = [](const CellMaster& m) {
    std::int64_t lo = 1 << 30, hi = -(1 << 30);
    for (const PinTemplate& p : m.pins) {
      if (p.isOutput) continue;
      for (const Point& ap : p.accessPointsNm) {
        lo = std::min(lo, ap.y);
        hi = std::max(hi, ap.y);
      }
    }
    return hi - lo;
  };
  EXPECT_LT(inputSpread(*compact.byName("NAND2X1")),
            inputSpread(*wide.byName("NAND2X1")));
}

TEST(CellLibrary, AsciiRenderingShowsAccessPoints) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  std::string art = lib.renderAscii(*lib.byName("NAND2X1"));
  EXPECT_NE(art.find("NAND2X1"), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find("VDD"), std::string::npos);
}

TEST(DesignGen, HitsTargetInstanceCountAndUtilization) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  DesignSpec spec;
  spec.targetInstances = 400;
  spec.utilization = 0.92;
  spec.seed = 5;
  Design d = generateDesign(lib, spec);
  EXPECT_GE(static_cast<int>(d.instances.size()), 380);
  EXPECT_NEAR(d.utilization(lib), 0.92, 0.06);
}

TEST(DesignGen, DeterministicInSeed) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_8t());
  DesignSpec spec;
  spec.targetInstances = 200;
  spec.seed = 9;
  Design a = generateDesign(lib, spec);
  Design b = generateDesign(lib, spec);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].siteX, b.instances[i].siteX);
    EXPECT_EQ(a.instances[i].row, b.instances[i].row);
  }
}

TEST(DesignGen, NoPlacementOverlaps) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  DesignSpec spec;
  spec.targetInstances = 300;
  spec.seed = 3;
  Design d = generateDesign(lib, spec);
  std::vector<std::vector<std::pair<int, int>>> spansByRow(d.rows);
  for (const Instance& inst : d.instances) {
    int w = lib.master(inst.master).widthSites;
    spansByRow[inst.row].push_back({inst.siteX, inst.siteX + w});
    EXPECT_LE(inst.siteX + w, d.sitesPerRow);
  }
  for (auto& spans : spansByRow) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 0; i + 1 < spans.size(); ++i)
      EXPECT_LE(spans[i].second, spans[i + 1].first) << "overlap in row";
  }
}

TEST(DesignGen, NetsHaveOneDriverAndUniqueSinks) {
  auto lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  DesignSpec spec;
  spec.targetInstances = 250;
  spec.seed = 11;
  Design d = generateDesign(lib, spec);
  ASSERT_GT(d.nets.size(), 100u);
  std::set<std::pair<int, int>> sinkSeen;
  for (const DesignNet& net : d.nets) {
    ASSERT_GE(net.terminals.size(), 2u);
    EXPECT_TRUE(lib.master(d.instances[net.terminals[0].instance].master)
                    .pins[net.terminals[0].pin]
                    .isOutput);
    for (std::size_t t = 1; t < net.terminals.size(); ++t) {
      const Terminal& s = net.terminals[t];
      EXPECT_FALSE(
          lib.master(d.instances[s.instance].master).pins[s.pin].isOutput);
      EXPECT_TRUE(sinkSeen.insert({s.instance, s.pin}).second)
          << "input pin driven twice";
    }
  }
}

struct Flow {
  CellLibrary lib = CellLibrary::forTechnology(tech::Technology::n28_12t());
  Design d;
  GlobalRoute gr;

  explicit Flow(std::uint64_t seed, int insts = 300) {
    DesignSpec spec;
    spec.targetInstances = insts;
    spec.seed = seed;
    d = generateDesign(lib, spec);
    gr = globalRoute(d, lib);
  }
};

TEST(GlobalRoute, EveryNetCoversItsTerminalGcells) {
  Flow f(17);
  for (std::size_t n = 0; n < f.d.nets.size(); ++n) {
    for (const Terminal& t : f.d.nets[n].terminals) {
      Point p = f.d.terminalNm(f.lib, t);
      int gx = std::clamp(static_cast<int>(p.x / f.gr.grid.windowNm), 0,
                          f.gr.grid.nx - 1);
      int gy = std::clamp(static_cast<int>(p.y / f.gr.grid.windowNm), 0,
                          f.gr.grid.ny - 1);
      int id = f.gr.grid.id(gx, gy);
      EXPECT_TRUE(std::binary_search(f.gr.netCells[n].begin(),
                                     f.gr.netCells[n].end(), id))
          << "net " << n << " misses its terminal gcell";
    }
  }
}

TEST(GlobalRoute, CrossingSlotsAreUniquePerEdge) {
  Flow f(23);
  std::set<std::tuple<int, int, bool, int, int>> seen;
  for (const Crossing& c : f.gr.crossings) {
    EXPECT_TRUE(
        seen.insert({c.gx, c.gy, c.towardX, c.track, c.layer}).second)
        << "duplicate crossing slot on an edge";
  }
}

TEST(ClipExtract, ProducesValidClips) {
  Flow f(29);
  auto clips = extractClips(f.d, f.lib, f.gr);
  ASSERT_GT(clips.size(), 5u);
  for (const clip::Clip& c : clips) {
    Status s = c.validate();
    EXPECT_TRUE(s.isOk()) << c.id << ": " << s.message();
    EXPECT_EQ(c.tracksX, 7);
    EXPECT_EQ(c.tracksY, 10);
  }
}

TEST(ClipExtract, PinCostsVaryAcrossClips) {
  Flow f(31);
  auto clips = extractClips(f.d, f.lib, f.gr);
  ASSERT_GT(clips.size(), 3u);
  double lo = 1e18, hi = -1e18;
  for (const clip::Clip& c : clips) {
    double pc = clip::pinCost(c).total();
    lo = std::min(lo, pc);
    hi = std::max(hi, pc);
  }
  EXPECT_GT(hi, lo);  // the metric actually discriminates
}

TEST(ClipExtract, BoundaryTerminalsSitOnClipEdges) {
  Flow f(37);
  auto clips = extractClips(f.d, f.lib, f.gr);
  for (const clip::Clip& c : clips) {
    for (const clip::ClipPin& p : c.pins) {
      if (!p.isBoundary) continue;
      for (const auto& ap : p.accessPoints) {
        bool onEdge = ap.x == 0 || ap.x == c.tracksX - 1 || ap.y == 0 ||
                      ap.y == c.tracksY - 1;
        EXPECT_TRUE(onEdge) << c.id;
      }
    }
  }
}

}  // namespace
}  // namespace optr::layout
