// Tests for the clip model, the pin-cost metric, and clip IO round trips.
#include "clip/clip.h"
#include "clip/clip_io.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_clips.h"

namespace optr::clip {
namespace {

using testing::makeSimpleClip;
using testing::randomClip;

TEST(Clip, ValidateAcceptsWellFormed) {
  auto c = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {4, 4, 2}}});
  EXPECT_TRUE(c.validate().isOk());
}

TEST(Clip, ValidateRejectsOutOfBoundsAccessPoint) {
  auto c = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {5, 4, 2}}});
  EXPECT_FALSE(c.validate().isOk());
}

TEST(Clip, ValidateRejectsSinglePinNet) {
  auto c = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {4, 4, 2}}});
  c.nets[0].pins.pop_back();
  EXPECT_FALSE(c.validate().isOk());
}

TEST(Clip, ValidateRejectsOutOfBoundsObstacle) {
  auto c = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {4, 4, 2}}});
  c.obstacles.push_back({0, 0, 7});
  EXPECT_FALSE(c.validate().isOk());
}

TEST(Clip, ValidateRejectsBrokenCrossReference) {
  auto c = makeSimpleClip(5, 5, 3,
                          {{{0, 0, 0}, {4, 4, 2}}, {{1, 1, 0}, {2, 2, 0}}});
  c.pins[0].net = 1;  // pin claims the wrong net
  EXPECT_FALSE(c.validate().isOk());
}

TEST(PinCost, CountsOnlyCellPins) {
  auto c = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {4, 4, 0}}});
  c.pins[1].isBoundary = true;
  auto pc = pinCost(c);
  EXPECT_DOUBLE_EQ(pc.pec, 1.0);
}

TEST(PinCost, SmallerPinsCostMore) {
  auto a = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {4, 4, 0}}});
  auto b = a;
  for (auto& p : a.pins) p.shapeNm = Rect(0, 0, 10, 10);     // tiny pins
  for (auto& p : b.pins) p.shapeNm = Rect(0, 0, 100, 100);   // big pins
  EXPECT_GT(pinCost(a).pac, pinCost(b).pac);
}

TEST(PinCost, CloserPinsCostMore) {
  auto a = makeSimpleClip(7, 7, 3, {{{0, 0, 0}, {1, 0, 0}}});
  auto b = makeSimpleClip(7, 7, 3, {{{0, 0, 0}, {6, 6, 0}}});
  a.pins[0].shapeNm = Rect(0, 0, 40, 40);
  a.pins[1].shapeNm = Rect(100, 0, 140, 40);
  b.pins[0].shapeNm = Rect(0, 0, 40, 40);
  b.pins[1].shapeNm = Rect(800, 800, 840, 840);
  EXPECT_GT(pinCost(a).prc, pinCost(b).prc);
}

TEST(PinCost, MatchesClosedForm) {
  // One pin of area A: PAC = 2^(2 - A/theta); two pins at spacing s:
  // PRC = 2^(2 - s/(3 theta)).
  auto c = makeSimpleClip(7, 7, 3, {{{0, 0, 0}, {6, 0, 0}}});
  c.pins[0].shapeNm = Rect(0, 0, 50, 10);     // area 500
  c.pins[1].shapeNm = Rect(100, 0, 150, 10);  // spacing 50
  auto pc = pinCost(c, 500.0);
  EXPECT_DOUBLE_EQ(pc.pec, 2.0);
  double pacExpected = std::exp2(2.0 - 500.0 / 500.0) * 2;
  EXPECT_NEAR(pc.pac, pacExpected, 1e-9);
  double prcExpected = std::exp2(2.0 - 50.0 / 1500.0);
  EXPECT_NEAR(pc.prc, prcExpected, 1e-9);
}

TEST(ClipIo, RoundTripSingle) {
  auto c = randomClip(17, 6, 6, 4, 4);
  c.obstacles.push_back({2, 2, 0});
  c.pins[0].isBoundary = true;
  std::string text = toText(c);
  auto back = fromText(text);
  ASSERT_TRUE(back.isOk()) << back.status().message();
  const Clip& d = back.value();
  EXPECT_EQ(d.id, c.id);
  EXPECT_EQ(d.techName, c.techName);
  EXPECT_EQ(d.tracksX, c.tracksX);
  EXPECT_EQ(d.numLayers, c.numLayers);
  ASSERT_EQ(d.pins.size(), c.pins.size());
  for (std::size_t i = 0; i < c.pins.size(); ++i) {
    EXPECT_EQ(d.pins[i].net, c.pins[i].net);
    EXPECT_EQ(d.pins[i].isBoundary, c.pins[i].isBoundary);
    EXPECT_EQ(d.pins[i].accessPoints, c.pins[i].accessPoints);
    EXPECT_EQ(d.pins[i].shapeNm, c.pins[i].shapeNm);
  }
  EXPECT_EQ(d.obstacles, c.obstacles);
  ASSERT_EQ(d.nets.size(), c.nets.size());
  for (std::size_t i = 0; i < c.nets.size(); ++i) {
    EXPECT_EQ(d.nets[i].name, c.nets[i].name);
    EXPECT_EQ(d.nets[i].pins, c.nets[i].pins);
  }
}

TEST(ClipIo, RoundTripMulti) {
  std::vector<Clip> clips;
  for (std::uint64_t s = 1; s <= 5; ++s) clips.push_back(randomClip(s));
  std::string text = toTextMulti(clips);
  auto back = fromTextMulti(text);
  ASSERT_TRUE(back.isOk()) << back.status().message();
  ASSERT_EQ(back.value().size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(back.value()[i].id, clips[i].id);
    EXPECT_EQ(back.value()[i].pins.size(), clips[i].pins.size());
  }
}

TEST(ClipIo, FileRoundTrip) {
  std::vector<Clip> clips = {randomClip(42)};
  std::string path = ::testing::TempDir() + "/clips_roundtrip.txt";
  ASSERT_TRUE(saveClips(path, clips).isOk());
  auto back = loadClips(path);
  ASSERT_TRUE(back.isOk()) << back.status().message();
  EXPECT_EQ(back.value().size(), 1u);
  EXPECT_EQ(back.value()[0].id, clips[0].id);
}

TEST(ClipIo, RejectsMalformedInput) {
  EXPECT_FALSE(fromText("garbage\nEND\n").isOk());
  EXPECT_FALSE(fromText("CLIP x TECH t TRACKS 5 5 LAYERS 2\nPIN 0 CELL "
                        "SHAPE 0 0 1 1 APS 1 0 0 0\nEND\n")
                   .isOk());  // PIN references net before NET declared
  EXPECT_FALSE(fromText("CLIP x TECH t TRACKS 5 5 LAYERS 2\n").isOk());
  EXPECT_FALSE(
      fromText("CLIP x TECH t TRACKS 5 5 LAYERS 2\nNET a\nPIN 0 CELL SHAPE "
               "0 0 1 1 APS 2 0 0 0\nEND\n")
          .isOk());  // AP count mismatch
}

TEST(ClipIo, LoadMissingFileFails) {
  EXPECT_FALSE(loadClips("/nonexistent/path/clips.txt").isOk());
}

}  // namespace
}  // namespace optr::clip
