// Tests for the local-improvement subsystem (paper Section 5 future work).
#include "core/improver.h"

#include <gtest/gtest.h>

#include "test_clips.h"

namespace optr::core {
namespace {

using testing::randomClip;

TEST(LocalImprover, NeverIncreasesCostAndCountsCorrectly) {
  std::vector<clip::Clip> clips;
  for (std::uint64_t s = 1; s <= 5; ++s) clips.push_back(randomClip(s));
  ImproverOptions opt;
  opt.router.mip.timeLimitSec = 20;
  LocalImprover improver(tech::Technology::n28_12t(),
                         tech::ruleByName("RULE1").value(), opt);
  ImprovementReport report = improver.improve(clips);
  ASSERT_EQ(report.clips.size(), clips.size());
  for (const ClipImprovement& ci : report.clips) {
    if (ci.baselineRouted) {
      EXPECT_LE(ci.optimalCost, ci.baselineCost + 1e-9) << ci.clipId;
    }
  }
  EXPECT_GE(report.costBefore, report.costAfter);
  EXPECT_LE(report.improved, report.attempted);
}

TEST(LocalImprover, ParallelMatchesSerial) {
  std::vector<clip::Clip> clips;
  for (std::uint64_t s = 10; s <= 15; ++s) clips.push_back(randomClip(s));
  ImproverOptions serial, parallel;
  serial.router.mip.timeLimitSec = parallel.router.mip.timeLimitSec = 20;
  serial.threads = 1;
  parallel.threads = 4;
  LocalImprover a(tech::Technology::n28_12t(),
                  tech::ruleByName("RULE1").value(), serial);
  LocalImprover b(tech::Technology::n28_12t(),
                  tech::ruleByName("RULE1").value(), parallel);
  auto ra = a.improve(clips);
  auto rb = b.improve(clips);
  ASSERT_EQ(ra.clips.size(), rb.clips.size());
  for (std::size_t i = 0; i < ra.clips.size(); ++i) {
    EXPECT_EQ(ra.clips[i].clipId, rb.clips[i].clipId);
    // Proven-optimal costs must match exactly; time-limited ones may differ.
    if (ra.clips[i].status == RouteStatus::kOptimal &&
        rb.clips[i].status == RouteStatus::kOptimal) {
      EXPECT_NEAR(ra.clips[i].optimalCost, rb.clips[i].optimalCost, 1e-9);
    }
  }
}

TEST(LocalImprover, ReportsUnroutedBaselines) {
  // A provably unroutable clip: single row, one layer, overlapping spans.
  clip::Clip c = testing::makeSimpleClip(
      5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}, {{1, 0, 0}, {3, 0, 0}}});
  ImproverOptions opt;
  opt.router.mip.timeLimitSec = 10;
  LocalImprover improver(tech::Technology::n28_12t(),
                         tech::ruleByName("RULE1").value(), opt);
  auto report = improver.improve({c});
  ASSERT_EQ(report.clips.size(), 1u);
  EXPECT_FALSE(report.clips[0].baselineRouted);
  EXPECT_EQ(report.clips[0].status, RouteStatus::kInfeasible);
  EXPECT_EQ(report.attempted, 0);
}

}  // namespace
}  // namespace optr::core
