// Bench-trajectory regression tracking: the JSON parser, the two-snapshot
// diff (tools/bench_compare), and the intra-file work-conservation
// self-check that replaced run_perf_smoke.sh's inline python gate.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "report/bench_diff.h"

namespace optr::report {
namespace {

JsonValue parse(const std::string& text) {
  auto v = parseJson(text);
  EXPECT_TRUE(v.isOk()) << v.status().message();
  return v.isOk() ? std::move(v).value() : JsonValue{};
}

TEST(BenchJson, ParsesNestedDocumentKeepingRawNumberTokens) {
  JsonValue doc = parse(
      "{\"benchmark\":\"bench_runtime\",\"wall\":12.50,"
      "\"passes\":[{\"mode\":\"serial\",\"registry\":{\"lpPivots\":1200},"
      "\"clips\":[{\"name\":\"c0\",\"rule\":\"RULE1\",\"cost\":31.0,"
      "\"ok\":true,\"note\":null,\"tag\":\"a\\\"b\"}]}]}");
  EXPECT_EQ(doc.text("benchmark"), "bench_runtime");
  EXPECT_DOUBLE_EQ(doc.num("wall"), 12.5);
  const JsonValue* passes = doc.find("passes");
  ASSERT_NE(passes, nullptr);
  ASSERT_EQ(passes->items.size(), 1u);
  const JsonValue& serial = passes->items[0];
  EXPECT_DOUBLE_EQ(serial.find("registry")->num("lpPivots"), 1200.0);
  const JsonValue& c0 = serial.find("clips")->items[0];
  // Raw token survives: "31.0", not a re-rendered "31".
  EXPECT_EQ(c0.find("cost")->raw, "31.0");
  EXPECT_TRUE(c0.find("ok")->boolean);
  EXPECT_EQ(c0.find("note")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(c0.text("tag"), "a\"b");
}

TEST(BenchJson, RejectsMalformedInput) {
  EXPECT_FALSE(parseJson("{\"a\":").isOk());
  EXPECT_FALSE(parseJson("{\"a\":1} trailing").isOk());
  EXPECT_FALSE(parseJson("{'a':1}").isOk());
  EXPECT_EQ(parseJson("{\"a\":}").status().code(), ErrorCode::kParse);
}

// A minimal bench_runtime-shaped snapshot builder.
std::string snapshot(long long serialPivots, const char* costA,
                     long long mipPivots = -1) {
  std::string mip = mipPivots < 0 ? std::to_string(serialPivots)
                                  : std::to_string(mipPivots);
  return std::string("{\"benchmark\":\"bench_runtime\",\"passes\":[") +
         "{\"mode\":\"serial\",\"mipThreads\":1,\"wallMs\":100,"
         "\"registry\":{\"lpPivots\":" + std::to_string(serialPivots) +
         ",\"ilpPivots\":" + std::to_string(serialPivots) +
         ",\"nodes\":10,\"routeSolves\":2},"
         "\"clips\":[{\"name\":\"c0\",\"rule\":\"RULE1\",\"status\":"
         "\"optimal\",\"cost\":" + costA + ",\"bestBound\":" + costA + "},"
         "{\"name\":\"c1\",\"rule\":\"RULE1\",\"status\":\"feasible\","
         "\"cost\":40}]},"
         "{\"mode\":\"mip-parallel\",\"mipThreads\":4,\"wallMs\":60,"
         "\"registry\":{\"lpPivots\":" + mip +
         ",\"ilpPivots\":" + mip + ",\"nodes\":10,\"routeSolves\":2},"
         "\"clips\":[{\"name\":\"c0\",\"rule\":\"RULE1\",\"status\":"
         "\"optimal\",\"cost\":" + costA + "}]}]}";
}

TEST(BenchCompare, IdenticalSnapshotsPassAtParity) {
  JsonValue base = parse(snapshot(1000, "31"));
  JsonValue cand = parse(snapshot(1000, "31"));
  BenchCompareResult res = compareBench(base, cand);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.unitsCompared, 2);
  EXPECT_GE(res.tasksCompared, 3);
  // The deterministic unit got its gate; the parallel one a skip note.
  bool sawOk = false, sawSkip = false;
  for (const std::string& n : res.notes) {
    if (n.find("serial': pivot gate OK") != std::string::npos) sawOk = true;
    if (n.find("mip-parallel") != std::string::npos &&
        n.find("skipped") != std::string::npos)
      sawSkip = true;
  }
  EXPECT_TRUE(sawOk);
  EXPECT_TRUE(sawSkip);
}

TEST(BenchCompare, TwentyPercentPivotRegressionFailsSerialOnly) {
  // +20% pivots on BOTH passes: only the deterministic serial unit gates.
  JsonValue base = parse(snapshot(1000, "31"));
  JsonValue cand = parse(snapshot(1200, "31"));
  BenchCompareResult res = compareBench(base, cand);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_NE(res.failures[0].find("unit 'serial': pivot regression +20.0%"),
            std::string::npos);
  EXPECT_NE(res.failures[0].find("1000 -> 1200"), std::string::npos);

  // Within the 10% default: passes. A tighter threshold: fails again.
  JsonValue mild = parse(snapshot(1050, "31"));
  EXPECT_TRUE(compareBench(base, mild).ok());
  BenchCompareOptions strict;
  strict.maxPivotRegress = 0.01;
  EXPECT_FALSE(compareBench(base, mild, strict).ok());
  // And the gate can be disabled outright.
  BenchCompareOptions off;
  off.maxPivotRegress = -1.0;
  EXPECT_TRUE(compareBench(base, cand, off).ok());
}

TEST(BenchCompare, ProvenCostDivergenceIsAlwaysAFailure) {
  JsonValue base = parse(snapshot(1000, "31"));
  JsonValue cand = parse(snapshot(1000, "32"));
  BenchCompareResult res = compareBench(base, cand);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.failures[0].find("proven cost changed 31 -> 32"),
            std::string::npos);

  // Same value, different bytes: "31" vs "31.0" must also fail -- the
  // contract is byte equality, not numeric equality.
  JsonValue bytes = parse(snapshot(1000, "31.0"));
  BenchCompareResult res2 = compareBench(base, bytes);
  EXPECT_FALSE(res2.ok());
}

TEST(BenchCompare, WallGateIsOptIn) {
  JsonValue base = parse(snapshot(1000, "31"));
  // Same work, double the wall time (edit wallMs in the candidate).
  std::string slow = snapshot(1000, "31");
  std::size_t at = slow.find("\"wallMs\":100");
  ASSERT_NE(at, std::string::npos);
  slow.replace(at, 12, "\"wallMs\":250");
  JsonValue cand = parse(slow);
  EXPECT_TRUE(compareBench(base, cand).ok());  // disabled by default
  BenchCompareOptions opt;
  opt.maxWallRegress = 0.5;
  BenchCompareResult res = compareBench(base, cand, opt);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_NE(res.failures[0].find("wall regression +150.0%"),
            std::string::npos);
}

TEST(BenchCompare, MismatchedShapesDegradeToNotesOrHardFailures) {
  JsonValue base = parse(snapshot(1000, "31"));
  // Different benchmark entirely: immediate failure.
  JsonValue other = parse("{\"benchmark\":\"bench_lp\",\"configs\":[]}");
  EXPECT_FALSE(compareBench(base, other).ok());
  // No overlapping units: failure (nothing was actually compared).
  JsonValue empty = parse("{\"benchmark\":\"bench_runtime\",\"passes\":[]}");
  BenchCompareResult res = compareBench(base, empty);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.failures[0].find("no comparable units"), std::string::npos);
  // One-sided task: a note, and the pivot gate steps aside.
  std::string pruned = snapshot(1000, "31");
  std::size_t cut = pruned.find(",{\"name\":\"c1\"");
  ASSERT_NE(cut, std::string::npos);
  pruned.erase(cut, pruned.find("]},", cut) - cut);
  BenchCompareResult res2 = compareBench(base, parse(pruned));
  EXPECT_TRUE(res2.ok());
  bool sawOneSided = false, sawSkip = false;
  for (const std::string& n : res2.notes) {
    if (n.find("only in baseline") != std::string::npos) sawOneSided = true;
    if (n.find("task sets not comparable") != std::string::npos)
      sawSkip = true;
  }
  EXPECT_TRUE(sawOneSided);
  EXPECT_TRUE(sawSkip);
}

// ---- the bench_runtime work-conservation self-check -----------------------

std::string selfDoc(long long clipPivots, long long mipPivots,
                    const char* mipCost) {
  return std::string("{\"benchmark\":\"bench_runtime\",\"passes\":[") +
         "{\"mode\":\"serial\",\"registry\":{\"lpPivots\":1000,"
         "\"ilpPivots\":900,\"nodes\":10,\"routeSolves\":2},"
         "\"clips\":[{\"name\":\"c0\",\"rule\":\"RULE1\",\"status\":"
         "\"optimal\",\"cost\":31}]},"
         "{\"mode\":\"clip-parallel\",\"registry\":{\"lpPivots\":" +
         std::to_string(clipPivots) +
         ",\"ilpPivots\":900,\"nodes\":10,\"routeSolves\":2},"
         "\"clips\":[{\"name\":\"c0\",\"rule\":\"RULE1\",\"status\":"
         "\"optimal\",\"cost\":31}]},"
         "{\"mode\":\"mip-parallel\",\"mipThreads\":4,"
         "\"registry\":{\"lpPivots\":" + std::to_string(mipPivots) +
         ",\"ilpPivots\":800,\"nodes\":12,\"routeSolves\":2},"
         "\"clips\":[{\"name\":\"c0\",\"rule\":\"RULE1\",\"status\":"
         "\"optimal\",\"cost\":" + mipCost + "}]}]}";
}

TEST(BenchSelfCheck, WorkConservationHoldsOnAConsistentSnapshot) {
  BenchCompareResult res = selfCheckBench(parse(selfDoc(1000, 2500, "31")));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.unitsCompared, 1);
}

TEST(BenchSelfCheck, ClipParallelMustMatchSerialExactly) {
  BenchCompareResult res = selfCheckBench(parse(selfDoc(1001, 1000, "31")));
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.failures[0].find("clip-parallel lpPivots 1001 != serial 1000"),
            std::string::npos);
}

TEST(BenchSelfCheck, MipParallelGetsARatioBandNotExactness) {
  // 4x serial pivots: allowed. 5x: pathological.
  EXPECT_TRUE(selfCheckBench(parse(selfDoc(1000, 4000, "31"))).ok());
  BenchCompareResult res = selfCheckBench(parse(selfDoc(1000, 5000, "31")));
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.failures[0].find("outside 4x"), std::string::npos);
}

TEST(BenchSelfCheck, CrossPassOptimalCostMustAgree) {
  BenchCompareResult res = selfCheckBench(parse(selfDoc(1000, 1000, "30")));
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.failures[0].find("proven cost diverges"), std::string::npos);
}

TEST(BenchSelfCheck, ObsDisabledSnapshotSkipsVacuously) {
  std::string doc = selfDoc(0, 0, "31");
  // Zero out the serial registry the way an OPTR_OBS_DISABLED build would.
  for (const char* k : {"\"lpPivots\":1000", "\"ilpPivots\":900",
                        "\"nodes\":10", "\"routeSolves\":2"}) {
    std::size_t at = doc.find(k);
    ASSERT_NE(at, std::string::npos);
    std::string key(k, std::strchr(k, ':') - k);
    doc.replace(at, std::strlen(k), key + ":0");
  }
  BenchCompareResult res = selfCheckBench(parse(doc));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.unitsCompared, 0);
  bool sawSkip = false;
  for (const std::string& n : res.notes) {
    if (n.find("OPTR_OBS disabled") != std::string::npos) sawSkip = true;
  }
  EXPECT_TRUE(sawSkip);
}

TEST(BenchSelfCheck, OtherBenchmarksNoteNoSelfCheck) {
  BenchCompareResult res =
      selfCheckBench(parse("{\"benchmark\":\"bench_fleet\"}"));
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.notes.size(), 1u);
  EXPECT_NE(res.notes[0].find("no self-check defined"), std::string::npos);
}

}  // namespace
}  // namespace optr::report
