// Unit and property tests for the branch-and-bound MIP solver.
//
// Correctness here is what makes OptRouter "optimal": the suite checks
// proven-optimal answers against brute-force enumeration, exercises lazy
// separation, warm starts, infeasibility proofs, and limit behaviour.
#include "ilp/mip.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace optr::ilp {
namespace {

using lp::LpModel;
using lp::RowBuilder;
using lp::RowSense;

int addRow(LpModel& m, RowSense sense, double rhs,
           std::vector<std::pair<int, double>> terms) {
  RowBuilder rb;
  for (auto& [c, v] : terms) rb.add(c, v);
  rb.sense = sense;
  rb.rhs = rhs;
  return m.addRow(rb);
}

TEST(Mip, KnapsackOptimal) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  (min of negated).
  // Best: b + c = 20 (weight 6). a + c = 17, b alone 13.
  LpModel m;
  int a = m.addColumn(-10, 0, 1);
  int b = m.addColumn(-13, 0, 1);
  int c = m.addColumn(-7, 0, 1);
  addRow(m, RowSense::kLe, 6, {{a, 3}, {b, 4}, {c, 2}});
  MipSolver solver(m, {true, true, true});
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-9);
  EXPECT_NEAR(r.x[c], 1.0, 1e-9);
}

TEST(Mip, LpRelaxationIsFractionalButMipRounds) {
  // min -x-y s.t. 2x + 2y <= 3, binary: LP gives 1.5 total, MIP only 1.
  LpModel m;
  int x = m.addColumn(-1, 0, 1);
  int y = m.addColumn(-1, 0, 1);
  addRow(m, RowSense::kLe, 3, {{x, 2}, {y, 2}});
  MipSolver solver(m, {true, true});
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(Mip, InfeasibleIntegerProblem) {
  // x + y = 1 with x = y forced by two inequalities and both binary with
  // 2x + 2y = 1 impossible in integers.
  LpModel m;
  int x = m.addColumn(1, 0, 1);
  int y = m.addColumn(1, 0, 1);
  addRow(m, RowSense::kEq, 1, {{x, 2}, {y, 2}});  // LP-feasible (x=y=0.25)
  MipSolver solver(m, {true, true});
  auto r = solver.solve();
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(Mip, MixedIntegerContinuousSplit) {
  // Integer x, continuous f: min x s.t. f >= 2.5, f <= 10 x  => x = 1.
  LpModel m;
  int x = m.addColumn(1, 0, 1);
  int f = m.addColumn(0, 0, 100);
  addRow(m, RowSense::kGe, 2.5, {{f, 1}});
  addRow(m, RowSense::kLe, 0, {{f, 1}, {x, -10}});
  MipSolver solver(m, {true, false});
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, 1e-9);
  EXPECT_GE(r.x[f], 2.5 - 1e-6);
}

TEST(Mip, LazySeparatorCutsPairs) {
  // max x0+x1+x2 subject to a lazy "at most one of each adjacent pair" rule
  // enforced only through the separator, never in the initial model.
  LpModel m;
  std::vector<int> cols;
  for (int i = 0; i < 3; ++i) cols.push_back(m.addColumn(-1, 0, 1));
  MipSolver solver(m, {true, true, true});
  int calls = 0;
  solver.setLazySeparator([&](const std::vector<double>& x, LpModel& model) {
    ++calls;
    int added = 0;
    for (int i = 0; i + 1 < 3; ++i) {
      if (x[i] > 0.5 && x[i + 1] > 0.5) {
        addRow(model, RowSense::kLe, 1, {{cols[i], 1}, {cols[i + 1], 1}});
        ++added;
      }
    }
    return added;
  });
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  // Optimum under the pair rule: x0 = x2 = 1, x1 = 0.
  EXPECT_NEAR(r.objective, -2.0, 1e-6);
  EXPECT_GT(calls, 0);
  EXPECT_GT(r.lazyRowsAdded, 0);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(Mip, WarmStartAcceptsValidIncumbent) {
  LpModel m;
  int x = m.addColumn(-5, 0, 1);
  int y = m.addColumn(-4, 0, 1);
  addRow(m, RowSense::kLe, 1, {{x, 1}, {y, 1}});
  MipSolver solver(m, {true, true});
  EXPECT_TRUE(solver.setInitialIncumbent({0, 1}));   // feasible, obj -4
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-6);  // still finds the better point
}

TEST(Mip, WarmStartRejectsInfeasibleIncumbent) {
  LpModel m;
  int x = m.addColumn(-5, 0, 1);
  int y = m.addColumn(-4, 0, 1);
  addRow(m, RowSense::kLe, 1, {{x, 1}, {y, 1}});
  MipSolver solver(m, {true, true});
  EXPECT_FALSE(solver.setInitialIncumbent({1, 1}));    // violates the row
  EXPECT_FALSE(solver.setInitialIncumbent({0.5, 0}));  // fractional
  EXPECT_FALSE(solver.setInitialIncumbent({0}));       // wrong size
}

TEST(Mip, NodeLimitReportsFeasibleLimit) {
  // A problem the solver cannot finish in 1 node but where the root LP is
  // integral-infeasible; with maxNodes=1 we must get a limit status.
  LpModel m;
  std::vector<int> cols;
  for (int i = 0; i < 10; ++i) cols.push_back(m.addColumn(-1 - 0.1 * i, 0, 1));
  RowBuilder rb;
  for (int c : cols) rb.add(c, 3.0);
  rb.sense = RowSense::kLe;
  rb.rhs = 7.0;  // at most 2 ones, LP fractional
  m.addRow(rb);
  MipOptions opt;
  opt.maxNodes = 1;
  MipSolver solver(m, std::vector<bool>(10, true), opt);
  auto r = solver.solve();
  EXPECT_TRUE(r.status == MipStatus::kFeasibleLimit ||
              r.status == MipStatus::kNoSolutionLimit);
  EXPECT_LE(r.bestBound, r.objective + 1e-9);
}

TEST(Mip, BoundsRestoredAfterSolve) {
  LpModel m;
  int x = m.addColumn(-1, 0, 1);
  int y = m.addColumn(-1, 0, 1);
  addRow(m, RowSense::kLe, 1, {{x, 2}, {y, 2}});
  MipSolver solver(m, {true, true});
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_EQ(m.lower(x), 0.0);
  EXPECT_EQ(m.upper(x), 1.0);
  EXPECT_EQ(m.lower(y), 0.0);
  EXPECT_EQ(m.upper(y), 1.0);
}

// ---------------------------------------------------------------------------
// Property suite: random binary programs cross-checked by brute force.
// ---------------------------------------------------------------------------

class MipRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MipRandomized, MatchesBruteForce) {
  Rng rng(GetParam() * 7919 + 13);
  const int n = static_cast<int>(rng.uniformInt(3, 8));
  LpModel m;
  std::vector<double> obj(n);
  for (int c = 0; c < n; ++c) {
    obj[c] = static_cast<double>(rng.uniformInt(-9, 9));
    m.addColumn(obj[c], 0, 1);
  }
  const int rows = static_cast<int>(rng.uniformInt(1, 5));
  struct RowData {
    std::vector<double> coef;
    RowSense sense;
    double rhs;
  };
  std::vector<RowData> rowData;
  for (int r = 0; r < rows; ++r) {
    RowData rd;
    rd.coef.resize(n, 0.0);
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (!rng.chance(0.6)) continue;
      rd.coef[c] = static_cast<double>(rng.uniformInt(-4, 4));
      rb.add(c, rd.coef[c]);
    }
    rd.sense = rng.chance(0.5) ? RowSense::kLe : RowSense::kGe;
    // rhs chosen so the all-zero point is feasible about half the time.
    rd.rhs = static_cast<double>(rng.uniformInt(-3, 6)) *
             (rd.sense == RowSense::kLe ? 1 : -1);
    rb.sense = rd.sense;
    rb.rhs = rd.rhs;
    m.addRow(rb);
    rowData.push_back(std::move(rd));
  }

  // Brute force over all 2^n assignments.
  double bruteBest = lp::kInfinity;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double val = 0;
    bool ok = true;
    for (auto& rd : rowData) {
      double act = 0;
      for (int c = 0; c < n; ++c)
        if (mask & (1 << c)) act += rd.coef[c];
      if (rd.sense == RowSense::kLe ? act > rd.rhs + 1e-9
                                    : act < rd.rhs - 1e-9) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int c = 0; c < n; ++c)
      if (mask & (1 << c)) val += obj[c];
    bruteBest = std::min(bruteBest, val);
  }

  MipSolver solver(m, std::vector<bool>(n, true));
  auto r = solver.solve();
  if (bruteBest == lp::kInfinity) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible);
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal)
        << "brute force found feasible point with objective " << bruteBest;
    EXPECT_NEAR(r.objective, bruteBest, 1e-6);
    EXPECT_TRUE(m.isFeasible(r.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandomized,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace optr::ilp
