// Observability-layer tests: metrics registry, trace session, trace reader.
//
// The golden-schema cases pin the JSONL contract between obs/trace.h (the
// writer) and obs/trace_read.h (the reader used by tools/trace_report): if
// the writer changes shape, these fail before any downstream tooling does.
// The concurrency cases are part of the TSan leg (tools/run_sanitized_tests.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/opt_router.h"
#include "obs/analyze.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_read.h"
#include "tech/technology.h"
#include "test_clips.h"

namespace optr {
namespace {

using clip::TrackPoint;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Stops the process-wide session even when an ASSERT bails out of the test.
struct SessionGuard {
  ~SessionGuard() { obs::TraceSession::stop(); }
};

// --- Metrics registry -------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  auto& m = obs::metrics();
  obs::Counter& c = m.counter("test.basics.counter");
  const std::int64_t base = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), base + 42);

  obs::Gauge& g = m.gauge("test.basics.gauge");
  g.set(7);
  g.add(3);
  EXPECT_EQ(g.value(), 10);

  obs::MetricsSnapshot before = m.snapshot();
  obs::Histogram& h = m.histogram("test.basics.hist");
  h.record(1.0);
  h.record(100.0);
  h.record(10.0);
  obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(m.snapshot(), before);
  const obs::MetricsSnapshot::Entry* e = d.find("test.basics.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(e->count, 3);
  EXPECT_DOUBLE_EQ(e->sum, 111.0);
  EXPECT_DOUBLE_EQ(e->min, 1.0);
  EXPECT_DOUBLE_EQ(e->max, 100.0);
}

TEST(Metrics, DeltaSubtractsCountersButKeepsGaugeLevel) {
  auto& m = obs::metrics();
  obs::Counter& c = m.counter("test.delta.counter");
  obs::Gauge& g = m.gauge("test.delta.gauge");
  c.add(5);
  g.set(100);
  obs::MetricsSnapshot before = m.snapshot();
  c.add(3);
  g.set(250);
  obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(m.snapshot(), before);
  EXPECT_EQ(d.value("test.delta.counter"), 3);   // difference
  EXPECT_EQ(d.value("test.delta.gauge"), 250);   // level, not difference
}

TEST(Metrics, SnapshotJsonIsFlatObject) {
  auto& m = obs::metrics();
  m.counter("test.json.counter").add(2);
  std::string json = m.snapshot().toJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.json.counter\":"), std::string::npos);
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  // Hot-path contract: relaxed atomic adds from many threads lose nothing.
  // This test is part of the TSan leg.
  auto& m = obs::metrics();
  obs::Counter& c = m.counter("test.concurrent.counter");
  obs::Histogram& h = m.histogram("test.concurrent.hist");
  const std::int64_t cBase = c.value();
  obs::MetricsSnapshot before = m.snapshot();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(1.0);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(c.value() - cBase, kThreads * kPerThread);
  obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(m.snapshot(), before);
  const obs::MetricsSnapshot::Entry* e = d.find("test.concurrent.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(e->sum, static_cast<double>(kThreads * kPerThread));
}

// --- Trace session: writer-side golden schema -------------------------------

TEST(Trace, SpanNestingEventsAndGoldenSchema) {
  const std::string path = tempPath("obs_schema.jsonl");
  SessionGuard guard;
  ASSERT_TRUE(obs::TraceSession::start(path).isOk());
  EXPECT_TRUE(obs::TraceSession::active());

  std::uint64_t outerId = 0, innerId = 0;
  {
    obs::Span outer("test.outer");
    outer.detail("clipX|RULEY");
    outer.arg("alpha", 1.5);
    outerId = outer.id();
    ASSERT_NE(outerId, 0u);
    {
      obs::Span inner("test.inner");
      innerId = inner.id();
      obs::event("test.ping", "hello", {{"beta", 2.0}});
    }
  }
  obs::TraceSession::stop();
  EXPECT_FALSE(obs::TraceSession::active());

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  const std::vector<obs::TraceEntry>& es = entriesOr.value();

  // Header meta: schema name + version (the versioning contract).
  ASSERT_GE(es.size(), 5u);  // meta, 2 spans, 1 event, closing meta
  EXPECT_EQ(es.front().type, "meta");
  EXPECT_EQ(es.front().schema, obs::kTraceSchemaName);
  EXPECT_EQ(es.front().version, obs::kTraceSchemaVersion);
  // Closing meta: end flag, session duration, dropped count.
  EXPECT_EQ(es.back().type, "meta");
  EXPECT_TRUE(es.back().end);
  EXPECT_GT(es.back().durNs, 0);
  EXPECT_EQ(es.back().dropped, 0);

  const obs::TraceEntry* outer = nullptr;
  const obs::TraceEntry* inner = nullptr;
  const obs::TraceEntry* ping = nullptr;
  for (const obs::TraceEntry& e : es) {
    if (e.name == "test.outer") outer = &e;
    if (e.name == "test.inner") inner = &e;
    if (e.name == "test.ping") ping = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(ping, nullptr);

  // Span record shape.
  EXPECT_EQ(outer->type, "span");
  EXPECT_EQ(outer->id, outerId);
  EXPECT_EQ(outer->parent, 0u);  // root
  EXPECT_GE(outer->dur, 0);
  EXPECT_EQ(outer->detail, "clipX|RULEY");
  EXPECT_DOUBLE_EQ(outer->arg("alpha"), 1.5);
  // Implicit parenting: inner under outer, event under inner.
  EXPECT_EQ(inner->parent, outerId);
  EXPECT_EQ(ping->type, "event");
  EXPECT_EQ(ping->parent, innerId);
  EXPECT_EQ(ping->id, 0u);  // events carry no span id
  EXPECT_EQ(ping->dur, 0);
  EXPECT_EQ(ping->detail, "hello");
  EXPECT_DOUBLE_EQ(ping->arg("beta"), 2.0);
  // Durations nest: the parent covers the child.
  EXPECT_GE(outer->dur, inner->dur);
}

TEST(Trace, CrossThreadParentOverrideNestsWorkerSpans) {
  const std::string path = tempPath("obs_crossthread.jsonl");
  SessionGuard guard;
  ASSERT_TRUE(obs::TraceSession::start(path).isOk());

  std::uint64_t rootId = 0, workerId = 0;
  {
    obs::Span root("test.root");
    rootId = obs::TraceSession::currentSpanId();
    ASSERT_EQ(rootId, root.id());
    std::thread worker([&] {
      // A fresh thread has no current span; the override provides one.
      obs::Span w("test.worker", rootId);
      workerId = w.id();
    });
    worker.join();
  }
  obs::TraceSession::stop();

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk());
  const obs::TraceEntry* w = nullptr;
  const obs::TraceEntry* r = nullptr;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "test.worker") w = &e;
    if (e.name == "test.root") r = &e;
  }
  ASSERT_NE(w, nullptr);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(w->parent, rootId);
  EXPECT_EQ(w->id, workerId);
  EXPECT_NE(w->tid, r->tid);  // distinct per-session thread ids
}

TEST(Trace, RingOverflowDropsAndCountsInsteadOfBlocking) {
  const std::string path = tempPath("obs_overflow.jsonl");
  const std::int64_t droppedBefore =
      obs::metrics().counter("trace.dropped").value();
  SessionGuard guard;
  obs::TraceOptions opts;
  opts.ringCapacity = 4;
  ASSERT_TRUE(obs::TraceSession::start(path, opts).isOk());

  // 100 events into a 4-slot ring with no flush in between: 4 land, 96
  // drop. The producer must return promptly every time (a blocking push
  // would hang this loop forever -- the test completing at all is the
  // "never blocks" half of the contract).
  for (int i = 0; i < 100; ++i) obs::event("test.flood");
  obs::TraceSession::stop();

  EXPECT_EQ(obs::metrics().counter("trace.dropped").value() - droppedBefore,
            96);

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk());
  std::int64_t floods = 0;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "test.flood") ++floods;
  }
  EXPECT_EQ(floods, 4);
  // The closing meta reports the drop count so readers can flag it.
  EXPECT_EQ(entriesOr.value().back().dropped, 96);
}

TEST(Trace, SecondStartFailsWhileActive) {
  const std::string path = tempPath("obs_double.jsonl");
  SessionGuard guard;
  ASSERT_TRUE(obs::TraceSession::start(path).isOk());
  Status again = obs::TraceSession::start(tempPath("obs_double2.jsonl"));
  EXPECT_EQ(again.code(), ErrorCode::kInvalidInput);
  obs::TraceSession::stop();
  obs::TraceSession::stop();  // idempotent
}

// --- Trace reader: aggregation golden cases ---------------------------------

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(TraceRead, GoldenAggregationSelfTimeAndRules) {
  const std::string path = tempPath("obs_golden.jsonl");
  writeFile(path,
            "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":1}\n"
            "{\"t\":\"span\",\"name\":\"route.solve\",\"tid\":0,\"ts\":0,"
            "\"id\":1,\"dur\":1000,\"detail\":\"clipA|RULE1\","
            "\"args\":{\"pivots\":10,\"nodes\":2}}\n"
            "{\"t\":\"span\",\"name\":\"mip.solve\",\"tid\":0,\"ts\":100,"
            "\"id\":2,\"dur\":800,\"par\":1}\n"
            "{\"t\":\"event\",\"name\":\"route.ladder\",\"tid\":0,\"ts\":990,"
            "\"par\":1,\"detail\":\"ilp-proven\"}\n"
            "{\"t\":\"meta\",\"end\":true,\"durNs\":1200,\"dropped\":0}\n");
  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  obs::TraceReport rep = obs::analyzeTrace(entriesOr.value());

  EXPECT_EQ(rep.spans, 2);
  EXPECT_EQ(rep.events, 1);
  EXPECT_EQ(rep.sessionNs, 1200);
  EXPECT_EQ(rep.rootNs, 1000);  // only route.solve is a root
  ASSERT_EQ(rep.phases.size(), 2u);
  EXPECT_EQ(rep.phases[0].name, "route.solve");  // sorted by total desc
  EXPECT_EQ(rep.phases[0].totalNs, 1000);
  EXPECT_EQ(rep.phases[0].selfNs, 200);  // 1000 minus the 800 child
  EXPECT_EQ(rep.phases[1].name, "mip.solve");
  EXPECT_EQ(rep.phases[1].selfNs, 800);

  ASSERT_EQ(rep.rules.size(), 1u);
  EXPECT_EQ(rep.rules[0].rule, "RULE1");
  EXPECT_EQ(rep.rules[0].solves, 1);
  EXPECT_EQ(rep.rules[0].totalNs, 1000);
  EXPECT_DOUBLE_EQ(rep.rules[0].pivots, 10.0);
  EXPECT_DOUBLE_EQ(rep.rules[0].nodes, 2.0);
  EXPECT_TRUE(rep.anomalies.empty());
}

TEST(TraceRead, FlagsPivotOutliersAndDroppedRecords) {
  const std::string path = tempPath("obs_outlier.jsonl");
  std::string content =
      "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":1}\n";
  // 20 unremarkable nodes plus one doing 500x the work.
  for (int i = 0; i < 20; ++i) {
    content += "{\"t\":\"span\",\"name\":\"mip.node\",\"tid\":0,\"ts\":" +
               std::to_string(i * 10) + ",\"id\":" + std::to_string(i + 1) +
               ",\"dur\":10,\"args\":{\"iters\":10}}\n";
  }
  content +=
      "{\"t\":\"span\",\"name\":\"mip.node\",\"tid\":0,\"ts\":200,"
      "\"id\":21,\"dur\":10,\"args\":{\"iters\":5000}}\n"
      "{\"t\":\"meta\",\"end\":true,\"durNs\":300,\"dropped\":7}\n";
  writeFile(path, content);

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk());
  obs::TraceReport rep = obs::analyzeTrace(entriesOr.value());
  ASSERT_EQ(rep.anomalies.size(), 2u);
  EXPECT_NE(rep.anomalies[0].find("pivot outlier"), std::string::npos);
  EXPECT_NE(rep.anomalies[0].find("5000"), std::string::npos);
  EXPECT_NE(rep.anomalies[1].find("dropped 7"), std::string::npos);
  EXPECT_EQ(rep.dropped, 7);
}

TEST(TraceRead, RejectsAlienFilesAndNewerSchemaVersions) {
  const std::string alien = tempPath("obs_alien.jsonl");
  writeFile(alien, "{\"t\":\"meta\",\"schema\":\"something-else\"}\n");
  EXPECT_EQ(obs::loadTrace(alien).status().code(), ErrorCode::kParse);

  const std::string future = tempPath("obs_future.jsonl");
  writeFile(future,
            "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":3}\n");
  EXPECT_EQ(obs::loadTrace(future).status().code(), ErrorCode::kUnavailable);

  EXPECT_EQ(obs::loadTrace(tempPath("obs_missing.jsonl")).status().code(),
            ErrorCode::kIo);
}

// --- v2 schema: attrs, torn lines, per-thread drops, merge ------------------

TEST(Trace, SpanAndEventAttrsRoundTrip) {
  const std::string path = tempPath("obs_attrs.jsonl");
  SessionGuard guard;
  ASSERT_TRUE(obs::TraceSession::start(path).isOk());
  {
    obs::Span s("test.attrs");
    s.attr("clip", "clipA");
    s.attr("rule", "RULE3");
    s.attr("status", "optimal");
    // Value longer than the inline cap: truncated, not dropped or corrupt.
    s.attr("long", "0123456789012345678901234567890123456789");
    obs::event("test.tagged", "d", {{"n", 1.0}}, {{"tech", "N7-9T"}});
  }
  obs::TraceSession::stop();

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  const obs::TraceEntry* span = nullptr;
  const obs::TraceEntry* ev = nullptr;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "test.attrs") span = &e;
    if (e.name == "test.tagged") ev = &e;
  }
  ASSERT_NE(span, nullptr);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(span->attr("clip"), "clipA");
  EXPECT_EQ(span->attr("rule"), "RULE3");
  EXPECT_EQ(span->attr("status"), "optimal");
  EXPECT_TRUE(span->hasAttr("long"));
  EXPECT_EQ(span->attr("long"), "01234567890123456789012");  // 23-char cap
  EXPECT_EQ(span->attr("absent", "fb"), "fb");
  EXPECT_FALSE(span->hasAttr("absent"));
  EXPECT_EQ(ev->attr("tech"), "N7-9T");
  EXPECT_DOUBLE_EQ(ev->arg("n"), 1.0);
}

TEST(TraceRead, SkipsTornLinesAndCountsThem) {
  const std::string path = tempPath("obs_torn.jsonl");
  // A crashed writer's torn tail: the last line stops mid-record. The
  // reader must keep every complete line and count the torn one.
  writeFile(path,
            "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":2}\n"
            "{\"t\":\"span\",\"name\":\"a\",\"tid\":0,\"ts\":0,\"id\":1,"
            "\"dur\":10}\n"
            "{\"t\":\"span\",\"name\":\"b\",\"tid\":0,\"ts\":5,\"id\":2,"
            "\"dur\":7,\"args\":{\"x\"\n"
            "{\"t\":\"span\",\"name\":\"c\",\"tid\":0,\"ts\":12,\"id\":3,"
            "\"dur\":3}\n");
  obs::TraceLoadStats stats;
  auto entriesOr = obs::loadTrace(path, &stats);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  EXPECT_EQ(stats.malformed, 1);
  EXPECT_FALSE(stats.sawFooter);  // crashed before the closing meta
  std::int64_t spans = 0;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.type == "span") ++spans;
    EXPECT_NE(e.name, "b");  // the torn record must not half-parse
  }
  EXPECT_EQ(spans, 2);

  // An unparseable HEADER is still a hard error, not a skip: without it
  // there is no version contract to read the rest under.
  const std::string noHeader = tempPath("obs_torn_header.jsonl");
  writeFile(noHeader, "{\"t\":\"meta\",\"schema\":\"opt\n");
  EXPECT_EQ(obs::loadTrace(noHeader).status().code(), ErrorCode::kParse);
}

TEST(TraceRead, PerThreadDropMetasFeedThreadAttribution) {
  const std::string path = tempPath("obs_tdrops.jsonl");
  writeFile(path,
            "{\"t\":\"meta\",\"schema\":\"optr-trace\",\"version\":2}\n"
            "{\"t\":\"span\",\"name\":\"a\",\"tid\":0,\"ts\":0,\"id\":1,"
            "\"dur\":10}\n"
            "{\"t\":\"meta\",\"droppedTid\":3,\"droppedCount\":5,"
            "\"pid\":41}\n"
            "{\"t\":\"meta\",\"droppedTid\":7,\"droppedCount\":2,"
            "\"pid\":41}\n"
            "{\"t\":\"meta\",\"end\":true,\"durNs\":20,\"dropped\":7}\n");
  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  obs::TraceReport rep = obs::analyzeTrace(entriesOr.value());
  EXPECT_EQ(rep.dropped, 7);
  ASSERT_EQ(rep.threadDrops.size(), 2u);
  EXPECT_EQ(rep.threadDrops[0].tid, 3);
  EXPECT_EQ(rep.threadDrops[0].count, 5);
  EXPECT_EQ(rep.threadDrops[0].pid, 41);
  EXPECT_EQ(rep.threadDrops[1].tid, 7);
  EXPECT_EQ(rep.threadDrops[1].count, 2);
  // One anomaly per thread plus the session-total warning.
  ASSERT_EQ(rep.anomalies.size(), 3u);
  EXPECT_NE(rep.anomalies[0].find("tid=3"), std::string::npos);
  EXPECT_NE(rep.anomalies[1].find("tid=7"), std::string::npos);
}

TEST(Trace, RingOverflowWritesPerThreadDropMeta) {
  const std::string path = tempPath("obs_overflow2.jsonl");
  SessionGuard guard;
  obs::TraceOptions opts;
  opts.ringCapacity = 4;
  ASSERT_TRUE(obs::TraceSession::start(path, opts).isOk());
  for (int i = 0; i < 50; ++i) obs::event("test.flood2");
  obs::TraceSession::stop();

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk());
  const std::vector<obs::TraceEntry>& es = entriesOr.value();
  // Footer stays the last record even with drop metas present.
  EXPECT_TRUE(es.back().end);
  std::int64_t perThread = 0;
  for (const obs::TraceEntry& e : es) {
    if (e.droppedTid >= 0) perThread += e.droppedCount;
  }
  EXPECT_EQ(perThread, 46);
  EXPECT_EQ(es.back().dropped, 46);
}

TEST(Trace, PulseDrainsRingsAndEmitsDropDeltasMidSession) {
  const std::string path = tempPath("obs_pulse.jsonl");
  SessionGuard guard;
  obs::TraceOptions opts;
  opts.ringCapacity = 4;
  ASSERT_TRUE(obs::TraceSession::start(path, opts).isOk());
  // Two overflow bursts separated by pulses: each pulse must drain what the
  // ring held AND report only the records lost SINCE the previous pulse --
  // a daemon's telemetry tick calls this repeatedly, so cumulative counts
  // here would double-report every earlier loss.
  for (int i = 0; i < 20; ++i) obs::event("test.pulse");  // keeps 4, drops 16
  obs::TraceSession::pulse();
  for (int i = 0; i < 10; ++i) obs::event("test.pulse");  // keeps 4, drops 6
  obs::TraceSession::pulse();
  obs::TraceSession::stop();

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk()) << entriesOr.status().message();
  std::int64_t events = 0;
  std::vector<std::int64_t> deltas;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.type == "event") ++events;
    if (e.droppedTid >= 0) deltas.push_back(e.droppedCount);
  }
  EXPECT_EQ(events, 8);  // both ring-fulls survived to the file
  ASSERT_EQ(deltas.size(), 2u) << "stop() must not re-report pulsed drops";
  EXPECT_EQ(deltas[0], 16);
  EXPECT_EQ(deltas[1], 6);
  // The footer keeps the cumulative session total.
  EXPECT_TRUE(entriesOr.value().back().end);
  EXPECT_EQ(entriesOr.value().back().dropped, 22);
}

TEST(TraceRead, MergeTracesRemapsCollidingSpanIds) {
  // Two workers wrote independent traces reusing the same small ids (and, in
  // real fleets, pid<<32 offsets that do not survive a double round-trip).
  std::vector<obs::TraceEntry> a(2), b(2);
  a[0].type = "span";
  a[0].name = "w0.root";
  a[0].id = 1;
  a[0].dur = 100;
  a[1].type = "span";
  a[1].name = "w0.child";
  a[1].id = 2;
  a[1].parent = 1;
  a[1].dur = 40;
  b[0].type = "span";
  b[0].name = "w1.root";
  b[0].id = 1;  // collides with a[0] before the merge
  b[0].dur = 200;
  b[1].type = "span";
  b[1].name = "w1.orphan";
  b[1].id = 2;
  b[1].parent = 77;  // parent record lost (dropped); must become a root
  b[1].dur = 50;

  std::vector<obs::TraceEntry> merged =
      obs::mergeTraces({std::move(a), std::move(b)});
  ASSERT_EQ(merged.size(), 4u);
  std::set<std::uint64_t> ids;
  for (const obs::TraceEntry& e : merged) ids.insert(e.id);
  EXPECT_EQ(ids.size(), 4u);  // all distinct after the remap
  const obs::TraceEntry* child = nullptr;
  const obs::TraceEntry* orphan = nullptr;
  const obs::TraceEntry* root0 = nullptr;
  for (const obs::TraceEntry& e : merged) {
    if (e.name == "w0.child") child = &e;
    if (e.name == "w1.orphan") orphan = &e;
    if (e.name == "w0.root") root0 = &e;
  }
  ASSERT_NE(child, nullptr);
  ASSERT_NE(orphan, nullptr);
  ASSERT_NE(root0, nullptr);
  EXPECT_EQ(child->parent, root0->id);  // intra-file nesting preserved
  EXPECT_EQ(orphan->parent, 0u);        // unknown parent -> root

  // analyzeTrace sees one coherent stream: both roots plus the orphan count
  // toward coverage; the still-parented child does not.
  obs::TraceReport rep = obs::analyzeTrace(merged);
  EXPECT_EQ(rep.spans, 4);
  EXPECT_EQ(rep.rootNs, 350);
}

TEST(TraceRead, MergeTracesStitchesRemoteParentsAcrossFiles) {
  // Hand-built coordinator + worker pair, with the worker file reusing the
  // coordinator's span ids -- the worst case for the remap, since stitching
  // must resolve against PRE-remap ids.
  std::vector<obs::TraceEntry> coord(2), worker(2);
  coord[0].type = "span";
  coord[0].name = "fleet.run";
  coord[0].id = 1;
  coord[0].dur = 1000;
  coord[1].type = "span";
  coord[1].name = "fleet.grant";
  coord[1].id = 2;
  coord[1].parent = 1;
  coord[1].trace = "00000000deadbeef";  // the minted origin context
  coord[1].dur = 10;
  worker[0].type = "span";
  worker[0].name = "fleet.task";
  worker[0].id = 1;  // collides with fleet.run before the merge
  worker[0].trace = "00000000deadbeef";
  worker[0].remoteParent = 2;
  worker[0].dur = 500;
  worker[1].type = "span";
  worker[1].name = "fleet.stray";
  worker[1].id = 2;
  worker[1].trace = "ffffffffffffffff";  // context nobody in the merge minted
  worker[1].remoteParent = 9;
  worker[1].dur = 5;

  std::vector<obs::TraceEntry> merged =
      obs::mergeTraces({std::move(coord), std::move(worker)});
  const obs::TraceEntry* run = nullptr;
  const obs::TraceEntry* grant = nullptr;
  const obs::TraceEntry* task = nullptr;
  const obs::TraceEntry* stray = nullptr;
  for (const obs::TraceEntry& e : merged) {
    if (e.name == "fleet.run") run = &e;
    if (e.name == "fleet.grant") grant = &e;
    if (e.name == "fleet.task") task = &e;
    if (e.name == "fleet.stray") stray = &e;
  }
  ASSERT_NE(run, nullptr);
  ASSERT_NE(grant, nullptr);
  ASSERT_NE(task, nullptr);
  ASSERT_NE(stray, nullptr);
  // The causal edge: the worker's task resolved its remote parent to the
  // coordinator's grant span in the OTHER file, which still nests under the
  // run root -- one tree across both processes.
  EXPECT_TRUE(task->stitched);
  EXPECT_EQ(task->parent, grant->id);
  EXPECT_EQ(grant->parent, run->id);
  EXPECT_FALSE(grant->stitched);  // the origin span itself is not stitched
  // Unresolvable context degrades to the dense-remap behavior: a root, never
  // a fabricated edge.
  EXPECT_FALSE(stray->stitched);
  EXPECT_EQ(stray->parent, 0u);
}

TEST(Trace, MintContextAndRemoteParentRoundTripThroughFiles) {
  const std::string clientPath = tempPath("obs_ctx_client.jsonl");
  const std::string serverPath = tempPath("obs_ctx_server.jsonl");
  SessionGuard guard;

  // "Client" process: a root span mints the context it would put on the
  // wire (service/sweep protocol traceId + parentSpan fields).
  ASSERT_TRUE(obs::TraceSession::start(clientPath).isOk());
  obs::TraceContext ctx;
  {
    obs::Span root("client.root");
    ctx = root.mintContext();
    ASSERT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.spanId, root.id());
    // Repeat mints reuse the span's trace id: one trace per origin span.
    EXPECT_EQ(root.mintContext().traceId, ctx.traceId);
  }
  obs::TraceSession::stop();

  // "Server" process, modeled as a second session (fresh span-id space, so
  // its ids collide with the client's): opens its span under the shipped
  // context; in-process children keep nesting normally beneath it.
  ASSERT_TRUE(obs::TraceSession::start(serverPath).isOk());
  {
    obs::Span remote("server.work", ctx);
    obs::Span inner("server.inner");
  }
  obs::TraceSession::stop();

  // Wire shape: the remote span carries the 16-hex "trace" id and the
  // origin span id as "rpar"; a single-file load never stitches.
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(ctx.traceId));
  auto serverOr = obs::loadTrace(serverPath);
  ASSERT_TRUE(serverOr.isOk()) << serverOr.status().message();
  const obs::TraceEntry* raw = nullptr;
  for (const obs::TraceEntry& e : serverOr.value())
    if (e.name == "server.work") raw = &e;
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->trace, hex);
  EXPECT_EQ(raw->remoteParent, ctx.spanId);
  EXPECT_FALSE(raw->stitched);

  // The merged view is one causal tree spanning both "processes".
  auto mergedOr = obs::loadTraces({clientPath, serverPath});
  ASSERT_TRUE(mergedOr.isOk()) << mergedOr.status().message();
  const obs::TraceEntry* root = nullptr;
  const obs::TraceEntry* work = nullptr;
  const obs::TraceEntry* inner = nullptr;
  for (const obs::TraceEntry& e : mergedOr.value()) {
    if (e.name == "client.root") root = &e;
    if (e.name == "server.work") work = &e;
    if (e.name == "server.inner") inner = &e;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(work, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(work->stitched);
  EXPECT_EQ(work->parent, root->id);
  EXPECT_EQ(inner->parent, work->id);

  // Inert contexts stay inert: with no session active, minting yields an
  // invalid context, and opening a span with one records nothing.
  obs::Span dead("after.stop");
  EXPECT_FALSE(dead.mintContext().valid());
  EXPECT_NE(obs::TraceSession::mintTraceId(), 0u);
}

TEST(Metrics, HistogramPercentilesAreAccurateWithinBucketWidth) {
  auto& m = obs::metrics();
  obs::MetricsSnapshot before = m.snapshot();
  obs::Histogram& h = m.histogram("test.pct.hist");
  // Uniform 1..1000: exact p50=500, p95=950, p99=990. The log-linear
  // buckets (16 per octave) bound relative error by half a sub-bucket,
  // ~3.1%; assert a safe 5%.
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(m.snapshot(), before);
  const obs::MetricsSnapshot::Entry* e = d.find("test.pct.hist");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->count, 1000);
  EXPECT_NEAR(e->percentile(0.50), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(e->percentile(0.95), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(e->percentile(0.99), 990.0, 990.0 * 0.05);
  // Extremes clamp to the observed range instead of bucket edges.
  EXPECT_GE(e->percentile(0.0), 1.0);
  EXPECT_LE(e->percentile(1.0), 1000.0);

  // Sub-unit and huge values land in the catch-all buckets (underflow /
  // open-ended last octave): estimates stay ordered and inside [min, max]
  // even though the bucket midpoints are coarse there.
  obs::MetricsSnapshot b2 = m.snapshot();
  obs::Histogram& h2 = m.histogram("test.pct.edge");
  h2.record(0.25);
  h2.record(1e15);
  obs::MetricsSnapshot d2 = obs::MetricsSnapshot::delta(m.snapshot(), b2);
  const obs::MetricsSnapshot::Entry* e2 = d2.find("test.pct.edge");
  ASSERT_NE(e2, nullptr);
  EXPECT_GE(e2->percentile(0.01), 0.25);
  EXPECT_LE(e2->percentile(0.01), 1.0);  // underflow bucket is [0, 1)
  EXPECT_GE(e2->percentile(1.0), 1e11);  // last octave starts at 2^39
  EXPECT_LE(e2->percentile(1.0), 1e15);
  EXPECT_LE(e2->percentile(0.01), e2->percentile(1.0));
}

TEST(Metrics, HistogramPercentilesAppearInJson) {
  auto& m = obs::metrics();
  obs::Histogram& h = m.histogram("test.pctjson.hist");
  h.record(5.0);
  std::string json = m.snapshot().toJson();
  std::size_t at = json.find("\"test.pctjson.hist\":");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"p50\":", at), std::string::npos);
  EXPECT_NE(json.find("\"p95\":", at), std::string::npos);
  EXPECT_NE(json.find("\"p99\":", at), std::string::npos);
}

// --- End to end: a traced solve, checked against the registry ---------------

TEST(ObsEndToEnd, TracedRouteSolveAgreesWithRegistryAndResult) {
  const std::string path = tempPath("obs_e2e.jsonl");
  clip::Clip c = testing::makeSimpleClip(
      5, 5, 3,
      {{TrackPoint{0, 0, 0}, TrackPoint{4, 4, 0}},
       {TrackPoint{0, 4, 0}, TrackPoint{4, 0, 0}}});
  auto techn = tech::Technology::byName(c.techName).value();
  auto rule = tech::ruleByName("RULE1").value();
  core::OptRouterOptions opt;
  opt.mip.timeLimitSec = 30.0;
  core::OptRouter router(techn, rule, opt);

  SessionGuard guard;
  ASSERT_TRUE(obs::TraceSession::start(path).isOk());
  obs::MetricsSnapshot before = obs::metrics().snapshot();
  core::RouteResult r = router.route(c);
  obs::MetricsSnapshot d =
      obs::MetricsSnapshot::delta(obs::metrics().snapshot(), before);
  obs::TraceSession::stop();
  ASSERT_EQ(r.status, core::RouteStatus::kOptimal);

  // One source of truth: the registry deltas must equal the RouteResult's
  // counters, which must equal the per-worker stat sums.
  EXPECT_EQ(d.value("route.solves"), 1);
  EXPECT_EQ(d.value("ilp.solves"), 1);
  EXPECT_EQ(d.value("ilp.nodes"), r.nodes);
  EXPECT_EQ(d.value("ilp.lp_pivots"), r.lpIterations);
  EXPECT_EQ(d.value("lp.pivots"), r.lpIterations);
  EXPECT_EQ(d.value("route.provenance.ilp-proven"), 1);

  auto entriesOr = obs::loadTrace(path);
  ASSERT_TRUE(entriesOr.isOk());
  const obs::TraceEntry* solve = nullptr;
  const obs::TraceEntry* mip = nullptr;
  const obs::TraceEntry* ladder = nullptr;
  std::int64_t nodeSpans = 0;
  double nodeIters = 0.0;
  for (const obs::TraceEntry& e : entriesOr.value()) {
    if (e.name == "route.solve") solve = &e;
    if (e.name == "mip.solve") mip = &e;
    if (e.name == "route.ladder") ladder = &e;
    if (e.name == "mip.node") {
      ++nodeSpans;
      nodeIters += e.arg("iters");
    }
  }
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(mip, nullptr);
  ASSERT_NE(ladder, nullptr);
  EXPECT_EQ(solve->detail, "test|RULE1");
  EXPECT_DOUBLE_EQ(solve->arg("pivots"), static_cast<double>(r.lpIterations));
  EXPECT_EQ(mip->parent, solve->id);
  EXPECT_EQ(ladder->detail, "ilp-proven");
  // Every branch-and-bound node left a span, and their per-span iteration
  // args re-add to the solve total (nothing double- or under-counted).
  EXPECT_EQ(nodeSpans, r.nodes);
  EXPECT_DOUBLE_EQ(nodeIters, static_cast<double>(r.lpIterations));

  // Coverage: the instrumented root span accounts for essentially the whole
  // session (the acceptance gate tools/trace_report checks at 5%).
  obs::TraceReport rep = obs::analyzeTrace(entriesOr.value());
  EXPECT_GE(rep.rootNs, rep.sessionNs * 8 / 10);
}

}  // namespace
}  // namespace optr
