// Tests for SADP mask decomposition, cross-checked against the DRC
// checker's end-of-line analysis.
#include "route/sadp_decompose.h"

#include <gtest/gtest.h>

#include "core/opt_router.h"
#include "route/maze_router.h"
#include "test_clips.h"

namespace optr::route {
namespace {

using clip::TrackPoint;
using testing::makeSimpleClip;
using testing::randomClip;

int findArc(const grid::RoutingGraph& g, TrackPoint a, TrackPoint b) {
  for (int arc : g.outArcs(g.vertexId(a))) {
    if (g.arc(arc).to == g.vertexId(b)) return arc;
  }
  return -1;
}

TEST(SadpDecompose, SkipsNonSadpLayers) {
  auto c = makeSimpleClip(5, 5, 3, {{{0, 0, 0}, {4, 0, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(),
                       tech::ruleByName("RULE1").value());
  RouteSolution sol;
  sol.usedArcs.assign(1, {});
  auto d = decomposeSadp(c, g, sol);
  EXPECT_TRUE(d.layers.empty());  // RULE1: no SADP layers at all
}

TEST(SadpDecompose, SegmentsAndParity) {
  // RULE2: SADP on every layer. One wire on M2 track 0 (mandrel) and one on
  // track 1 (spacer).
  auto c = makeSimpleClip(6, 3, 2,
                          {{{0, 0, 0}, {4, 0, 0}}, {{1, 1, 0}, {5, 1, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(),
                       tech::ruleByName("RULE2").value());
  RouteSolution sol;
  sol.usedArcs.assign(2, {});
  for (int x = 0; x < 4; ++x)
    sol.usedArcs[0].push_back(findArc(g, {x, 0, 0}, {x + 1, 0, 0}));
  for (int x = 1; x < 5; ++x)
    sol.usedArcs[1].push_back(findArc(g, {x, 1, 0}, {x + 1, 1, 0}));
  sol.normalize();
  auto d = decomposeSadp(c, g, sol);
  ASSERT_FALSE(d.layers.empty());
  const auto& m2 = d.layers[0];
  ASSERT_EQ(m2.segments.size(), 2u);
  for (const SadpSegment& seg : m2.segments) {
    if (seg.track == 0) {
      EXPECT_TRUE(seg.mandrel);
      EXPECT_EQ(seg.lo, 0);
      EXPECT_EQ(seg.hi, 4);
    } else {
      EXPECT_FALSE(seg.mandrel);
      EXPECT_EQ(seg.lo, 1);
      EXPECT_EQ(seg.hi, 5);
    }
  }
  EXPECT_TRUE(m2.decomposable);  // no via-bearing line ends at all
}

TEST(SadpDecompose, CutsAppearAtViaLineEnds) {
  auto c = makeSimpleClip(4, 4, 2, {{{0, 0, 0}, {2, 2, 1}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(),
                       tech::ruleByName("RULE2").value());
  // M2 wire 0->2 on track 0, via up at (2,0), M3 up to (2,2).
  RouteSolution sol;
  sol.usedArcs.assign(1, {});
  sol.usedArcs[0] = {findArc(g, {0, 0, 0}, {1, 0, 0}),
                     findArc(g, {1, 0, 0}, {2, 0, 0}),
                     findArc(g, {2, 0, 0}, {2, 0, 1}),
                     findArc(g, {2, 0, 1}, {2, 1, 1}),
                     findArc(g, {2, 1, 1}, {2, 2, 1})};
  sol.normalize();
  auto d = decomposeSadp(c, g, sol);
  ASSERT_EQ(d.layers.size(), 2u);
  // M2: cut at the line end (2, track 0); M3: cut at (position 0, track 2).
  EXPECT_EQ(d.layers[0].cuts.size(), 1u);
  EXPECT_EQ(d.layers[0].cuts[0].position, 2);
  EXPECT_EQ(d.layers[0].cuts[0].track, 0);
  EXPECT_EQ(d.layers[1].cuts.size(), 1u);
  EXPECT_GT(d.totalCuts(), 1);
  EXPECT_TRUE(d.decomposable());
}

TEST(SadpDecompose, AgreesWithDrcOnRandomOptimalSolutions) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto c = randomClip(seed, 5, 5, 3, 3);
    auto rule = tech::ruleByName("RULE2").value();
    auto techn = tech::Technology::n28_12t();
    core::OptRouterOptions o;
    o.mip.timeLimitSec = 15;
    auto r = core::OptRouter(techn, rule, o).route(c);
    if (!r.hasSolution()) continue;
    grid::RoutingGraph g(c, techn, rule);
    auto d = decomposeSadp(c, g, r.solution);
    // OptRouter's solutions are rule-clean, so every layer decomposes.
    EXPECT_TRUE(d.decomposable()) << "seed " << seed;
    ++checked;
  }
  EXPECT_GT(checked, 2);
}

TEST(SadpDecompose, FlagsViolatingGeometry) {
  // Two same-direction via-terminated line ends on adjacent M3 tracks at
  // the same position: illegal under SADP (same pattern as the DRC test).
  auto c = makeSimpleClip(4, 4, 3,
                          {{{1, 0, 0}, {1, 2, 2}}, {{2, 0, 0}, {2, 2, 2}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(),
                       tech::ruleByName("RULE2").value());
  RouteSolution sol;
  sol.usedArcs.assign(2, {});
  auto path = [&](int x) {
    return std::vector<int>{findArc(g, {x, 0, 0}, {x, 0, 1}),
                            findArc(g, {x, 0, 1}, {x, 1, 1}),
                            findArc(g, {x, 1, 1}, {x, 2, 1}),
                            findArc(g, {x, 2, 1}, {x, 2, 2})};
  };
  sol.usedArcs[0] = path(1);
  sol.usedArcs[1] = path(2);
  sol.normalize();
  auto d = decomposeSadp(c, g, sol);
  EXPECT_FALSE(d.decomposable());
}

TEST(SadpDecompose, RenderShowsMasksAndCuts) {
  auto c = makeSimpleClip(4, 4, 2, {{{0, 0, 0}, {2, 2, 1}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(),
                       tech::ruleByName("RULE2").value());
  RouteSolution sol;
  sol.usedArcs.assign(1, {});
  sol.usedArcs[0] = {findArc(g, {0, 0, 0}, {1, 0, 0}),
                     findArc(g, {1, 0, 0}, {2, 0, 0}),
                     findArc(g, {2, 0, 0}, {2, 0, 1}),
                     findArc(g, {2, 0, 1}, {2, 1, 1}),
                     findArc(g, {2, 1, 1}, {2, 2, 1})};
  sol.normalize();
  auto d = decomposeSadp(c, g, sol);
  std::string art = renderMasks(c, g, d.layers[0]);
  EXPECT_NE(art.find('M'), std::string::npos);
  EXPECT_NE(art.find('X'), std::string::npos);
  EXPECT_NE(art.find("M2 SADP masks"), std::string::npos);
}

}  // namespace
}  // namespace optr::route
