// Tests for the heuristic baseline maze router: legality (DRC-clean claims),
// connectivity, negotiation under congestion, and rule awareness.
#include "route/maze_router.h"

#include <gtest/gtest.h>

#include "test_clips.h"

namespace optr::route {
namespace {

using clip::TrackPoint;
using testing::makeSimpleClip;
using testing::randomClip;

MazeResult run(const clip::Clip& c, const tech::RuleConfig& rule = {}) {
  auto techn = tech::Technology::byName(c.techName).value();
  grid::RoutingGraph g(c, techn, rule);
  MazeRouter router(c, g);
  return router.route();
}

TEST(MazeRouter, RoutesStraightNet) {
  auto c = makeSimpleClip(5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}});
  auto r = run(c);
  ASSERT_TRUE(r.success);
  auto techn = tech::Technology::byName(c.techName).value();
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  EXPECT_DOUBLE_EQ(r.solution.totalCost(g), 4.0);
}

TEST(MazeRouter, RoutesMultiPinNet) {
  auto c = makeSimpleClip(5, 5, 3,
                          {{{0, 0, 0}, {4, 0, 0}, {4, 4, 0}, {0, 4, 0}}});
  auto r = run(c);
  ASSERT_TRUE(r.success);
  auto techn = tech::Technology::byName(c.techName).value();
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  DrcChecker drc(c, g);
  EXPECT_TRUE(drc.check(r.solution).empty());
}

TEST(MazeRouter, NegotiatesCrossingNets) {
  // Two nets whose straight routes cross; negotiation must resolve it.
  auto c = makeSimpleClip(5, 5, 2,
                          {{{0, 2, 0}, {4, 2, 0}}, {{2, 0, 1}, {2, 4, 1}}});
  auto r = run(c);
  ASSERT_TRUE(r.success);
}

TEST(MazeRouter, ReportsFailureOnImpossibleClip) {
  // Single row, one layer, overlapping spans: provably unroutable.
  auto c = makeSimpleClip(5, 1, 1,
                          {{{0, 0, 0}, {4, 0, 0}}, {{1, 0, 0}, {3, 0, 0}}});
  auto r = run(c);
  EXPECT_FALSE(r.success);
}

TEST(MazeRouter, SolutionsAreAlwaysDrcCleanWhenSuccessful) {
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto c = randomClip(seed, 6, 6, 3, 4);
    for (const char* ruleName : {"RULE1", "RULE3", "RULE6", "RULE9"}) {
      auto rule = tech::ruleByName(ruleName).value();
      auto techn = tech::Technology::byName(c.techName).value();
      grid::RoutingGraph g(c, techn, rule);
      MazeRouter router(c, g);
      auto r = router.route();
      if (!r.success) continue;
      ++successes;
      DrcChecker drc(c, g);
      auto violations = drc.check(r.solution);
      EXPECT_TRUE(violations.empty())
          << "seed " << seed << " " << ruleName << ": "
          << violations[0].describe(g);
    }
  }
  EXPECT_GT(successes, 30);  // the router should succeed on most cases
}

TEST(MazeRouter, RespectsObstacles) {
  auto c = makeSimpleClip(5, 3, 2, {{{0, 0, 0}, {4, 0, 0}}});
  c.obstacles.push_back({2, 0, 0});
  auto r = run(c);
  ASSERT_TRUE(r.success);
  auto techn = tech::Technology::byName(c.techName).value();
  tech::RuleConfig rule;
  grid::RoutingGraph g(c, techn, rule);
  EXPECT_GT(r.solution.totalCost(g), 4.0);  // forced around the obstacle
}

TEST(MazeRouter, CostNeverBelowManhattanLowerBound) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    auto c = randomClip(seed, 6, 6, 3, 3);
    auto r = run(c);
    if (!r.success) continue;
    auto techn = tech::Technology::byName(c.techName).value();
    tech::RuleConfig rule;
    grid::RoutingGraph g(c, techn, rule);
    double lower = 0;
    for (const auto& net : c.nets) {
      // Weak per-net bound: Manhattan distance of the farthest sink pair in
      // x (same-layer moves) -- just a sanity floor.
      const auto& src = c.pins[net.pins[0]].accessPoints[0];
      for (std::size_t s = 1; s < net.pins.size(); ++s) {
        const auto& snk = c.pins[net.pins[s]].accessPoints[0];
        lower = std::max(
            lower, static_cast<double>(std::abs(src.x - snk.x)));
      }
    }
    EXPECT_GE(r.solution.totalCost(g), lower - 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace optr::route
