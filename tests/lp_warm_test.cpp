// Warm-start and continue-in-place tests for the simplex solver: these are
// the mechanisms branch-and-bound leans on, so they get their own suite.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace optr::lp {
namespace {

int addRow(LpModel& m, RowSense sense, double rhs,
           std::vector<std::pair<int, double>> terms) {
  RowBuilder rb;
  for (auto& [c, v] : terms) rb.add(c, v);
  rb.sense = sense;
  rb.rhs = rhs;
  return m.addRow(rb);
}

/// Random LP with guaranteed-feasible origin; used across the suite.
LpModel randomLp(Rng& rng, int n, int rows) {
  LpModel m;
  for (int c = 0; c < n; ++c)
    m.addColumn(static_cast<double>(rng.uniformInt(-5, 5)), 0.0, 4.0);
  for (int r = 0; r < rows; ++r) {
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (rng.chance(0.5))
        rb.add(c, static_cast<double>(rng.uniformInt(-3, 3)));
    }
    rb.sense = RowSense::kLe;
    rb.rhs = static_cast<double>(rng.uniformInt(0, 8));
    m.addRow(rb);
  }
  return m;
}

TEST(SimplexWarm, SnapshotRestoreReproducesOptimum) {
  Rng rng(7);
  LpModel m = randomLp(rng, 8, 5);
  SimplexSolver solver;
  auto r1 = solver.solve(m);
  ASSERT_EQ(r1.status, LpStatus::kOptimal);
  BasisSnapshot snap = solver.snapshot();

  SimplexSolver other;
  auto r2 = other.solve(m, &snap);
  ASSERT_EQ(r2.status, LpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-8);
  // Warm start from the optimal basis should converge almost immediately.
  EXPECT_LE(r2.iterations, 4);
}

TEST(SimplexWarm, ContinueAfterBoundTightening) {
  Rng rng(11);
  LpModel m = randomLp(rng, 10, 6);
  SimplexSolver solver;
  auto r1 = solver.solve(m);
  ASSERT_EQ(r1.status, LpStatus::kOptimal);

  // Fix a variable that was positive at the optimum to zero (the branching
  // pattern) and continue.
  int fixed = -1;
  for (int c = 0; c < m.numCols(); ++c) {
    if (r1.x[c] > 0.5) {
      fixed = c;
      break;
    }
  }
  if (fixed < 0) GTEST_SKIP() << "optimum at origin; nothing to fix";
  m.setBounds(fixed, 0.0, 0.0);
  ASSERT_TRUE(solver.canContinue(m));
  auto r2 = solver.solveContinue(m);
  ASSERT_EQ(r2.status, LpStatus::kOptimal);
  EXPECT_NEAR(r2.x[fixed], 0.0, 1e-9);
  // Cross-check against a cold solve.
  SimplexSolver cold;
  auto r3 = cold.solve(m);
  ASSERT_EQ(r3.status, LpStatus::kOptimal);
  EXPECT_NEAR(r2.objective, r3.objective, 1e-7);
}

TEST(SimplexWarm, ContinueAfterAppendedRows) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m = randomLp(rng, 9, 5);
    SimplexSolver solver;
    auto r1 = solver.solve(m);
    ASSERT_EQ(r1.status, LpStatus::kOptimal);

    // Append a cut violated by the current optimum about half the time.
    RowBuilder rb;
    for (int c = 0; c < m.numCols(); ++c) {
      if (rng.chance(0.4))
        rb.add(c, static_cast<double>(rng.uniformInt(-2, 2)));
    }
    rb.sense = RowSense::kLe;
    rb.rhs = static_cast<double>(rng.uniformInt(0, 4));
    m.addRow(rb);

    ASSERT_TRUE(solver.canContinue(m));
    auto r2 = solver.solveContinue(m);
    SimplexSolver cold;
    auto r3 = cold.solve(m);
    ASSERT_EQ(r2.status, r3.status) << "trial " << trial;
    if (r3.status == LpStatus::kOptimal) {
      EXPECT_NEAR(r2.objective, r3.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.isFeasible(r2.x, 1e-6)) << "trial " << trial;
    }
  }
}

TEST(SimplexWarm, ContinueDetectsInfeasibilityFromNewRows) {
  LpModel m;
  int x = m.addColumn(-1, 0, 5);
  addRow(m, RowSense::kLe, 4, {{x, 1}});
  SimplexSolver solver;
  auto r1 = solver.solve(m);
  ASSERT_EQ(r1.status, LpStatus::kOptimal);
  EXPECT_NEAR(r1.x[x], 4.0, 1e-9);

  addRow(m, RowSense::kGe, 10, {{x, 1}});  // x >= 10 contradicts x <= 5
  ASSERT_TRUE(solver.canContinue(m));
  auto r2 = solver.solveContinue(m);
  EXPECT_EQ(r2.status, LpStatus::kInfeasible);
}

TEST(SimplexWarm, CanContinueRejectsDifferentModel) {
  LpModel a, b;
  a.addColumn(1, 0, 1);
  b.addColumn(1, 0, 1);
  SimplexSolver solver;
  ASSERT_EQ(solver.solve(a).status, LpStatus::kOptimal);
  EXPECT_TRUE(solver.canContinue(a));
  EXPECT_FALSE(solver.canContinue(b));
}

TEST(SimplexWarm, ContinueWithEqualityRowsPreserved) {
  // Equality rows use artificials; appended inequality rows must remap them
  // correctly (the artificial block shifts when slacks are inserted).
  LpModel m;
  int x = m.addColumn(1, 0, 10);
  int y = m.addColumn(2, 0, 10);
  addRow(m, RowSense::kEq, 6, {{x, 1}, {y, 1}});
  SimplexSolver solver;
  auto r1 = solver.solve(m);
  ASSERT_EQ(r1.status, LpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, 6.0, 1e-7);  // x = 6, y = 0

  addRow(m, RowSense::kLe, 4, {{x, 1}});  // now x <= 4 forces y = 2
  ASSERT_TRUE(solver.canContinue(m));
  auto r2 = solver.solveContinue(m);
  ASSERT_EQ(r2.status, LpStatus::kOptimal);
  EXPECT_NEAR(r2.objective, 4.0 + 2.0 * 2.0, 1e-7);
}

TEST(SimplexWarm, RepeatedBranchLikeSequence) {
  // Emulates a dive: solve, fix a fractional-ish variable, continue, undo,
  // fix another -- objective must match cold solves at every step.
  Rng rng(29);
  LpModel m = randomLp(rng, 12, 8);
  SimplexSolver warm;
  auto base = warm.solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);

  std::vector<double> origLower(m.numCols()), origUpper(m.numCols());
  for (int c = 0; c < m.numCols(); ++c) {
    origLower[c] = m.lower(c);
    origUpper[c] = m.upper(c);
  }
  for (int step = 0; step < 10; ++step) {
    int c = static_cast<int>(rng.uniform(m.numCols()));
    if (rng.chance(0.5)) {
      m.setBounds(c, origLower[c], 0.0);
    } else {
      m.setBounds(c, std::min(1.0, origUpper[c]), origUpper[c]);
    }
    ASSERT_TRUE(warm.canContinue(m));
    auto rw = warm.solveContinue(m);
    SimplexSolver cold;
    auto rc = cold.solve(m);
    ASSERT_EQ(rw.status, rc.status) << "step " << step;
    if (rc.status == LpStatus::kOptimal) {
      EXPECT_NEAR(rw.objective, rc.objective, 1e-6) << "step " << step;
    }
    m.setBounds(c, origLower[c], origUpper[c]);  // undo for the next step
    ASSERT_TRUE(warm.canContinue(m));
    auto undo = warm.solveContinue(m);
    ASSERT_EQ(undo.status, LpStatus::kOptimal);
    EXPECT_NEAR(undo.objective, base.objective, 1e-6);
  }
}

}  // namespace
}  // namespace optr::lp
