// Unit tests for technology presets and Table 3 rule configurations.
#include "tech/rules.h"
#include "tech/technology.h"

#include <gtest/gtest.h>

namespace optr::tech {
namespace {

TEST(Technology, PresetsExist) {
  EXPECT_EQ(Technology::n28_12t().name, "N28-12T");
  EXPECT_EQ(Technology::n28_8t().name, "N28-8T");
  EXPECT_EQ(Technology::n7_9t().name, "N7-9T");
  EXPECT_EQ(Technology::all().size(), 3u);
}

TEST(Technology, LookupByName) {
  auto t = Technology::byName("N28-8T");
  ASSERT_TRUE(t.isOk());
  EXPECT_EQ(t.value().cellHeightTracks, 8);
  EXPECT_FALSE(Technology::byName("N5-6T").isOk());
}

TEST(Technology, StackIsM2ToM8Alternating) {
  auto t = Technology::n28_12t();
  ASSERT_EQ(t.numLayers(), 7);
  EXPECT_EQ(t.layers[0].name, "M2");
  EXPECT_TRUE(t.layers[0].horizontal);
  EXPECT_FALSE(t.layers[1].horizontal);
  EXPECT_EQ(t.layers[6].name, "M8");
  EXPECT_EQ(t.layerOfMetal(2), 0);
  EXPECT_EQ(t.layerOfMetal(8), 6);
  EXPECT_EQ(t.layerOfMetal(1), -1);
}

TEST(Technology, ClipTrackCountsMatchThePaper) {
  // 1um x 1um at 28nm: 7 vertical x 10 horizontal tracks (Section 4).
  for (const auto& t : Technology::all()) {
    EXPECT_EQ(t.clipTracksX, 7) << t.name;
    EXPECT_EQ(t.clipTracksY, 10) << t.name;
  }
}

TEST(Technology, PinStylesFollowFigure9) {
  EXPECT_EQ(Technology::n28_12t().pinStyle, PinStyle::kWide);
  EXPECT_EQ(Technology::n28_8t().pinStyle, PinStyle::kWide);
  EXPECT_EQ(Technology::n7_9t().pinStyle, PinStyle::kCompact);
  EXPECT_FALSE(Technology::n7_9t().supportsDiagonalViaRules);
}

TEST(Rules, TableThreeHasElevenConfigs) {
  auto rules = table3Rules();
  ASSERT_EQ(rules.size(), 11u);
  EXPECT_EQ(rules[0].name, "RULE1");
  EXPECT_EQ(rules[0].viaRestriction, ViaRestriction::kNone);
  EXPECT_FALSE(rules[0].hasSadp());
  EXPECT_EQ(rules[10].name, "RULE11");
  EXPECT_EQ(rules[10].viaRestriction, ViaRestriction::kFull);
  EXPECT_EQ(rules[10].sadpFromMetal, 3);
}

TEST(Rules, SadpLayerPredicates) {
  auto r3 = ruleByName("RULE3").value();  // SADP >= M3
  EXPECT_FALSE(r3.sadpOnMetal(2));
  EXPECT_TRUE(r3.sadpOnMetal(3));
  EXPECT_TRUE(r3.sadpOnMetal(8));
  auto r1 = ruleByName("RULE1").value();
  EXPECT_FALSE(r1.sadpOnMetal(2));
}

TEST(Rules, RuleLookupRejectsUnknown) {
  EXPECT_FALSE(ruleByName("RULE12").isOk());
  EXPECT_TRUE(ruleByName("RULE7").isOk());
}

TEST(Rules, N7ApplicabilityMatchesSection41) {
  // The paper skips RULE2, 7, 9, 10, 11 on N7-9T.
  auto n7 = Technology::n7_9t();
  std::vector<std::string> expectedSkipped = {"RULE2", "RULE7", "RULE9",
                                              "RULE10", "RULE11"};
  for (const auto& rule : table3Rules()) {
    bool applicable = ruleApplicable(rule, n7);
    bool shouldSkip =
        std::find(expectedSkipped.begin(), expectedSkipped.end(), rule.name) !=
        expectedSkipped.end();
    EXPECT_EQ(applicable, !shouldSkip) << rule.name;
  }
}

TEST(Rules, AllRulesApplicableOn28nm) {
  for (const auto& t : {Technology::n28_12t(), Technology::n28_8t()}) {
    for (const auto& rule : table3Rules()) {
      EXPECT_TRUE(ruleApplicable(rule, t)) << t.name << " " << rule.name;
    }
  }
}

TEST(Rules, ViaShapeHelpers) {
  EXPECT_TRUE(unitVia().isUnit());
  EXPECT_FALSE(barViaX().isUnit());
  EXPECT_FALSE(squareVia().isUnit());
  // Larger shapes are discounted (preferred for manufacturability).
  EXPECT_LT(squareVia().costFactor, barViaX().costFactor);
  EXPECT_LT(barViaX().costFactor, unitVia().costFactor);
}

TEST(Rules, BlockedNeighborCounts) {
  EXPECT_EQ(blockedNeighbors(ViaRestriction::kNone), 0);
  EXPECT_EQ(blockedNeighbors(ViaRestriction::kOrthogonal), 4);
  EXPECT_EQ(blockedNeighbors(ViaRestriction::kFull), 8);
}

}  // namespace
}  // namespace optr::tech
