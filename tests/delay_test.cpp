// Tests for the RC models and the Elmore delay estimator.
#include "route/delay.h"

#include <gtest/gtest.h>

#include "route/maze_router.h"
#include "test_clips.h"

namespace optr::route {
namespace {

using testing::makeSimpleClip;

RouteSolution routeIt(const clip::Clip& c, const grid::RoutingGraph& g) {
  MazeRouter maze(c, g);
  auto r = maze.route();
  EXPECT_TRUE(r.success);
  return r.solution;
}

TEST(RcModel, PaperScalingFactors) {
  auto n28 = tech::RcModel::n28();
  auto n7 = tech::RcModel::n7FromN28();
  ASSERT_EQ(n28.layers.size(), n7.layers.size());
  for (std::size_t z = 0; z < n28.layers.size(); ++z) {
    EXPECT_NEAR(n7.layers[z].rPerTrack, 6.0 * n28.layers[z].rPerTrack, 1e-12);
    EXPECT_NEAR(n7.layers[z].cPerTrack, n28.layers[z].cPerTrack / 2.5, 1e-12);
  }
  EXPECT_NEAR(n7.viaR, 6.0 * n28.viaR, 1e-12);
}

TEST(RcModel, TopLayersAreLowResistance) {
  auto m = tech::RcModel::n28();
  EXPECT_LT(m.layers[6].rPerTrack, m.layers[0].rPerTrack);  // M8 vs M2
}

TEST(RcModel, TechnologyDispatch) {
  EXPECT_EQ(tech::RcModel::forTechnology(tech::Technology::n7_9t()).techName,
            "N7(scaled)");
  EXPECT_EQ(tech::RcModel::forTechnology(tech::Technology::n28_8t()).techName,
            "N28-8T");
}

TEST(Delay, StraightWireMatchesClosedForm) {
  // A 3-segment straight wire on M2: r = c = 1 per segment, driver R = 1,
  // sink C = 0.5. Elmore: Rd*(3c + Cs) + sum over segments of
  // r_i * (c/2 + downstream).
  auto c = makeSimpleClip(4, 1, 1, {{{0, 0, 0}, {3, 0, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  RouteSolution sol = routeIt(c, g);
  auto rc = tech::RcModel::n28();
  DelayOptions opt;  // driverR = 1, sinkC = 0.5
  auto delays = estimateNetDelays(c, g, sol, rc, opt);
  ASSERT_EQ(delays.size(), 1u);
  // Hand computation: total C = 3*1 + 0.5 = 3.5; segment delays:
  //   seg1: 1 * (0.5 + 2 + 0.5) = 3.0
  //   seg2: 1 * (0.5 + 1 + 0.5) = 2.0
  //   seg3: 1 * (0.5 + 0.5)     = 1.0
  // driver: 1 * 3.5 = 3.5; total = 9.5.
  EXPECT_NEAR(delays[0].totalCapacitance, 3.5, 1e-9);
  EXPECT_NEAR(delays[0].worstSinkDelay, 9.5, 1e-9);
  EXPECT_NEAR(delays[0].worstPathResistance, 4.0, 1e-9);
}

TEST(Delay, LongerWireHasLargerDelay) {
  auto shortClip = makeSimpleClip(3, 1, 1, {{{0, 0, 0}, {2, 0, 0}}});
  auto longClip = makeSimpleClip(7, 1, 1, {{{0, 0, 0}, {6, 0, 0}}});
  auto rc = tech::RcModel::n28();
  grid::RoutingGraph g1(shortClip, tech::Technology::n28_12t(), tech::RuleConfig{});
  grid::RoutingGraph g2(longClip, tech::Technology::n28_12t(), tech::RuleConfig{});
  auto d1 = estimateNetDelays(shortClip, g1, routeIt(shortClip, g1), rc);
  auto d2 = estimateNetDelays(longClip, g2, routeIt(longClip, g2), rc);
  EXPECT_GT(d2[0].worstSinkDelay, d1[0].worstSinkDelay);
}

TEST(Delay, ViasAddResistance) {
  // Same Manhattan distance, but one route must change layers.
  auto planar = makeSimpleClip(4, 1, 1, {{{0, 0, 0}, {3, 0, 0}}});
  auto layered = makeSimpleClip(2, 4, 2, {{{0, 0, 0}, {0, 3, 0}}});
  auto rc = tech::RcModel::n28();
  grid::RoutingGraph g1(planar, tech::Technology::n28_12t(), tech::RuleConfig{});
  grid::RoutingGraph g2(layered, tech::Technology::n28_12t(), tech::RuleConfig{});
  auto d1 = estimateNetDelays(planar, g1, routeIt(planar, g1), rc);
  auto d2 = estimateNetDelays(layered, g2, routeIt(layered, g2), rc);
  // 3 segments + 2 vias (R 2.0 each) beats 3 plain segments.
  EXPECT_GT(d2[0].worstPathResistance, d1[0].worstPathResistance);
}

TEST(Delay, MultiSinkReportsWorstCase) {
  auto c = makeSimpleClip(7, 3, 2,
                          {{{0, 0, 0}, {2, 0, 0}, {6, 0, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  RouteSolution sol = routeIt(c, g);
  auto rc = tech::RcModel::n28();
  auto delays = estimateNetDelays(c, g, sol, rc);
  ASSERT_EQ(delays.size(), 1u);
  // The far sink at x=6 dominates; its path resistance includes >= 6 units.
  EXPECT_GE(delays[0].worstPathResistance, 6.0);
}

TEST(Delay, UnroutedNetReportsZeros) {
  auto c = makeSimpleClip(4, 1, 1, {{{0, 0, 0}, {3, 0, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  RouteSolution sol;
  sol.usedArcs.assign(1, {});
  auto delays =
      estimateNetDelays(c, g, sol, tech::RcModel::n28());
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_EQ(delays[0].worstSinkDelay, 0.0);
}

TEST(Delay, N7ScalingInflatesWireDelay) {
  auto c = makeSimpleClip(7, 1, 1, {{{0, 0, 0}, {6, 0, 0}}});
  grid::RoutingGraph g(c, tech::Technology::n28_12t(), tech::RuleConfig{});
  RouteSolution sol = routeIt(c, g);
  auto d28 = estimateNetDelays(c, g, sol, tech::RcModel::n28());
  auto d7 = estimateNetDelays(c, g, sol, tech::RcModel::n7FromN28());
  double ratio = d7[0].worstSinkDelay / d28[0].worstSinkDelay;
  EXPECT_GT(ratio, 1.5);   // resistivity dominates
  EXPECT_LT(ratio, 6.0);   // capped by the pure-R scaling
}

}  // namespace
}  // namespace optr::route
