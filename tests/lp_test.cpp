// Unit tests for the bounded-variable revised simplex solver.
//
// The LP engine is the foundation of OptRouter's optimality claim, so it is
// tested against hand-solved LPs, degenerate/unbounded/infeasible cases, and
// a randomized property suite cross-checked by brute-force vertex search on
// small instances.
#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace optr::lp {
namespace {

constexpr double kTol = 1e-6;

LpResult solve(const LpModel& m) {
  SimplexSolver solver;
  return solver.solve(m);
}

TEST(Simplex, TrivialBoundsOnlyMinimization) {
  LpModel m;
  int x = m.addColumn(3.0, 1.0, 5.0);
  int y = m.addColumn(-2.0, 0.0, 4.0);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, kTol);   // positive cost -> lower bound
  EXPECT_NEAR(r.x[y], 4.0, kTol);   // negative cost -> upper bound
  EXPECT_NEAR(r.objective, 3.0 * 1 - 2.0 * 4, kTol);
}

// Row-construction helpers shared by the tests below.
int addLeRow(LpModel& m, std::vector<std::pair<int, double>> terms,
             double rhs) {
  RowBuilder rb;
  for (auto& [c, v] : terms) rb.add(c, v);
  rb.sense = RowSense::kLe;
  rb.rhs = rhs;
  return m.addRow(rb);
}
int addGeRow(LpModel& m, std::vector<std::pair<int, double>> terms,
             double rhs) {
  RowBuilder rb;
  for (auto& [c, v] : terms) rb.add(c, v);
  rb.sense = RowSense::kGe;
  rb.rhs = rhs;
  return m.addRow(rb);
}
int addEqRow(LpModel& m, std::vector<std::pair<int, double>> terms,
             double rhs) {
  RowBuilder rb;
  for (auto& [c, v] : terms) rb.add(c, v);
  rb.sense = RowSense::kEq;
  rb.rhs = rhs;
  return m.addRow(rb);
}

TEST(Simplex, TwoVariableCornerOptimum) {
  // min -x - 2y  s.t.  x + y <= 4, x + 3y <= 6. Optimum (3,1), obj -5.
  LpModel m;
  int x = m.addColumn(-1.0, 0.0, 10.0);
  int y = m.addColumn(-2.0, 0.0, 10.0);
  addLeRow(m, {{x, 1}, {y, 1}}, 4);
  addLeRow(m, {{x, 1}, {y, 3}}, 6);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, kTol);
  EXPECT_NEAR(r.x[x], 3.0, kTol);
  EXPECT_NEAR(r.x[y], 1.0, kTol);
}

TEST(Simplex, EqualityConstraintsPhase1) {
  // min x + y  s.t.  x + y = 3, x - y = 1  =>  x=2, y=1, obj 3.
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 10.0);
  int y = m.addColumn(1.0, 0.0, 10.0);
  addEqRow(m, {{x, 1}, {y, 1}}, 3);
  addEqRow(m, {{x, 1}, {y, -1}}, 1);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, kTol);
  EXPECT_NEAR(r.x[y], 1.0, kTol);
}

TEST(Simplex, GreaterEqualRowsRequirePhase1) {
  // min 2x + 3y  s.t.  x + y >= 5, x >= 1. Optimum (5, 0)? x<=4 forces y.
  LpModel m;
  int x = m.addColumn(2.0, 0.0, 4.0);
  int y = m.addColumn(3.0, 0.0, 10.0);
  addGeRow(m, {{x, 1}, {y, 1}}, 5);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 4.0, kTol);
  EXPECT_NEAR(r.x[y], 1.0, kTol);
  EXPECT_NEAR(r.objective, 11.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 1.0);
  addGeRow(m, {{x, 1}}, 2.0);  // x >= 2 impossible with x <= 1
  auto r = solve(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  LpModel m;
  int x = m.addColumn(0.0, 0.0, 10.0);
  int y = m.addColumn(0.0, 0.0, 10.0);
  addEqRow(m, {{x, 1}, {y, 1}}, 4);
  addEqRow(m, {{x, 1}, {y, 1}}, 5);  // contradicts the first
  auto r = solve(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with x unbounded above and no rows limiting it.
  LpModel m;
  int x = m.addColumn(-1.0, 0.0, kInfinity);
  int y = m.addColumn(1.0, 0.0, 1.0);
  addLeRow(m, {{y, 1}}, 1.0);
  (void)x;
  auto r = solve(m);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, BoundFlipPath) {
  // max x+y (min -x-y) s.t. x + y <= 1.5 with x,y in [0,1]: needs a mix of
  // pivots and potentially bound flips; optimum 1.5.
  LpModel m;
  int x = m.addColumn(-1.0, 0.0, 1.0);
  int y = m.addColumn(-1.0, 0.0, 1.0);
  addLeRow(m, {{x, 1}, {y, 1}}, 1.5);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.5, kTol);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Klee-Minty-style degeneracy: several redundant rows through the origin.
  LpModel m;
  int x = m.addColumn(-1.0, 0.0, 100.0);
  int y = m.addColumn(-1.0, 0.0, 100.0);
  addLeRow(m, {{x, 1}}, 0.0);
  addLeRow(m, {{x, 1}, {y, -0.5}}, 0.0);
  addLeRow(m, {{x, 2}, {y, -1.0}}, 0.0);  // redundant copy of the above
  addLeRow(m, {{x, 0.5}, {y, 1}}, 1.0);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, kTol);  // x=0, y=1
}

TEST(Simplex, NegativeRhsRows) {
  // Rows with negative right-hand sides exercise the artificial-sign logic.
  // min x  s.t.  -x - y <= -3  (i.e. x + y >= 3), y <= 2  =>  x = 1.
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 10.0);
  int y = m.addColumn(0.0, 0.0, 2.0);
  addLeRow(m, {{x, -1}, {y, -1}}, -3.0);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, kTol);
}

TEST(Simplex, DuplicateColumnEntriesCoalesce) {
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 10.0);
  RowBuilder rb;
  rb.add(x, 1.0).add(x, 1.0);  // 2x >= 4
  rb.sense = RowSense::kGe;
  rb.rhs = 4.0;
  m.addRow(rb);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, kTol);
}

TEST(Simplex, TransportationProblem) {
  // Two suppliers (cap 10, 15), three consumers (need 8, 7, 9); costs
  // c = [[2,4,5],[3,1,7]]. Optimum splits demand 1 across both suppliers:
  // s1 -> d1: 1 (cost 2), s1 -> d3: 9 (45), s2 -> d1: 7 (21), s2 -> d2: 7 (7)
  // for a total of 75 (verified by exhaustive check over basic solutions).
  LpModel m;
  int v[2][3];
  double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) v[i][j] = m.addColumn(cost[i][j], 0.0, 100.0);
  addLeRow(m, {{v[0][0], 1}, {v[0][1], 1}, {v[0][2], 1}}, 10);
  addLeRow(m, {{v[1][0], 1}, {v[1][1], 1}, {v[1][2], 1}}, 15);
  addEqRow(m, {{v[0][0], 1}, {v[1][0], 1}}, 8);
  addEqRow(m, {{v[0][1], 1}, {v[1][1], 1}}, 7);
  addEqRow(m, {{v[0][2], 1}, {v[1][2], 1}}, 9);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 75.0, kTol);
}

TEST(Simplex, ShortestPathAsLp) {
  // Min-cost unit flow from node 0 to node 3 on a small digraph; LP optimum
  // equals the shortest path length (total unimodularity).
  //   0->1 (1), 0->2 (4), 1->2 (1), 1->3 (5), 2->3 (1).  Shortest: 0-1-2-3 = 3.
  LpModel m;
  int e01 = m.addColumn(1, 0, 1), e02 = m.addColumn(4, 0, 1);
  int e12 = m.addColumn(1, 0, 1), e13 = m.addColumn(5, 0, 1);
  int e23 = m.addColumn(1, 0, 1);
  addEqRow(m, {{e01, 1}, {e02, 1}}, 1);                 // out of source
  addEqRow(m, {{e01, 1}, {e12, -1}, {e13, -1}}, 0);     // node 1
  addEqRow(m, {{e02, 1}, {e12, 1}, {e23, -1}}, 0);      // node 2
  addEqRow(m, {{e13, 1}, {e23, 1}}, 1);                 // into sink
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);
  EXPECT_NEAR(r.x[e01], 1.0, kTol);
  EXPECT_NEAR(r.x[e12], 1.0, kTol);
  EXPECT_NEAR(r.x[e23], 1.0, kTol);
}

// ---------------------------------------------------------------------------
// Property suite: random dense-ish LPs, validated against brute-force
// enumeration of basic feasible points via a reference grid search over the
// (small) box, plus feasibility of the returned solution.
// ---------------------------------------------------------------------------

struct RandomLpCase {
  std::uint64_t seed;
};

class SimplexRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomized, SolutionFeasibleAndNotWorseThanGridScan) {
  Rng rng(GetParam());
  const int n = 3;
  LpModel m;
  for (int c = 0; c < n; ++c) {
    double obj = rng.uniformInt(-5, 5);
    m.addColumn(obj, 0.0, 3.0);
  }
  const int rows = static_cast<int>(rng.uniformInt(1, 4));
  for (int r = 0; r < rows; ++r) {
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (rng.chance(0.7)) rb.add(c, static_cast<double>(rng.uniformInt(-3, 3)));
    }
    rb.sense = RowSense::kLe;
    rb.rhs = static_cast<double>(rng.uniformInt(0, 9));
    m.addRow(rb);
  }
  auto r = solve(m);
  // x = 0 is always feasible here (rhs >= 0), so the LP must be solvable.
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_TRUE(m.isFeasible(r.x, 1e-6));

  // Grid scan over vertices of the box (coarse 0.5 step): LP optimum must be
  // <= any feasible grid point's objective.
  double best = 0.0;  // objective at origin
  for (double a = 0; a <= 3.0; a += 0.5)
    for (double b = 0; b <= 3.0; b += 0.5)
      for (double c = 0; c <= 3.0; c += 0.5) {
        std::vector<double> x = {a, b, c};
        if (!m.isFeasible(x, 1e-9)) continue;
        best = std::min(best, m.objectiveValue(x));
      }
  EXPECT_LE(r.objective, best + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomized,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// SimplexOptions::refactorInterval semantics. The configured value is NOT
// honored verbatim: <= 16 is taken literally (floored at 1) so tests can
// force the refactorization path, larger values are raised to at least the
// row count so the O(m^3) rebuild cannot dominate the O(m^2) pivot updates.
// Kernel tuning goes through effectiveRefactorInterval(); these tests pin
// the rule so a tuning sweep can't silently misconfigure the cadence.
// ---------------------------------------------------------------------------

TEST(SimplexRefactorInterval, SmallValuesHonoredVerbatim) {
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(1, 1000), 1);
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(4, 1000), 4);
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(16, 1000), 16);
}

TEST(SimplexRefactorInterval, NonPositiveValuesFlooredAtOne) {
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(0, 50), 1);
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(-7, 50), 1);
}

TEST(SimplexRefactorInterval, LargeValuesRaisedToRowCount) {
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(17, 1000), 1000);
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(256, 1000), 1000);
  // Already past m: honored as configured.
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(256, 100), 256);
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(5000, 1000), 5000);
  // Tiny models: anything > 16 becomes "refactor every m pivots".
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(17, 4), 17);
  EXPECT_EQ(SimplexOptions::effectiveRefactorInterval(20, 40), 40);
}

// ---------------------------------------------------------------------------
// Checkpoint/rollback: the primitive behind Formulation::resetRuleLayer()
// (rule sweeps roll the model back to the rule-independent base and push a
// new rule layer instead of rebuilding everything).

TEST(LpModelCheckpoint, RollbackDropsRowsPushedAfterMark) {
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 10.0);
  int y = m.addColumn(2.0, 0.0, 10.0);
  addGeRow(m, {{x, 1.0}, {y, 1.0}}, 4.0);
  int mark = m.markRows();
  auto base = solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  EXPECT_NEAR(base.objective, 4.0, kTol);  // x carries everything

  // A "lazy" cut forces the expensive column into the solution...
  addGeRow(m, {{y, 1.0}}, 3.0);
  auto cut = solve(m);
  ASSERT_EQ(cut.status, LpStatus::kOptimal);
  EXPECT_NEAR(cut.objective, 1.0 + 2.0 * 3.0, kTol);

  // ...and rolling back restores the pre-cut optimum exactly.
  m.truncateRows(mark);
  EXPECT_EQ(m.numRows(), 1);
  auto again = solve(m);
  ASSERT_EQ(again.status, LpStatus::kOptimal);
  EXPECT_NEAR(again.objective, base.objective, kTol);
}

TEST(LpModelCheckpoint, DoubleRollbackIsIdempotent) {
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 5.0);
  addGeRow(m, {{x, 1.0}}, 1.0);
  int mark = m.markRows();
  addGeRow(m, {{x, 1.0}}, 2.0);
  addGeRow(m, {{x, 1.0}}, 3.0);
  m.truncateRows(mark);
  EXPECT_EQ(m.numRows(), 1);
  m.truncateRows(mark);  // no rows above the mark: a no-op
  EXPECT_EQ(m.numRows(), 1);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, kTol);
}

TEST(LpModelCheckpoint, RollbackToEmptyModelKeepsBoundsOptimum) {
  LpModel m;
  int x = m.addColumn(3.0, 1.0, 5.0);
  int mark = m.markRows();  // zero rows
  addGeRow(m, {{x, 1.0}}, 4.0);
  auto constrained = solve(m);
  ASSERT_EQ(constrained.status, LpStatus::kOptimal);
  EXPECT_NEAR(constrained.x[x], 4.0, kTol);
  m.truncateRows(mark);
  EXPECT_EQ(m.numRows(), 0);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, kTol);  // back to the lower bound
}

TEST(LpModelCheckpoint, ColumnRollbackAfterRowRollback) {
  LpModel m;
  int x = m.addColumn(1.0, 0.0, 5.0);
  addGeRow(m, {{x, 1.0}}, 2.0);
  int rowMark = m.markRows();
  int colMark = m.markCols();

  // A rule layer may add both columns and rows referencing them; rollback
  // must drop the rows first, then the columns.
  int z = m.addColumn(0.5, 0.0, 5.0);
  addGeRow(m, {{x, 1.0}, {z, 1.0}}, 6.0);
  auto layered = solve(m);
  ASSERT_EQ(layered.status, LpStatus::kOptimal);
  EXPECT_NEAR(layered.objective, 2.0 + 0.5 * 4.0, kTol);

  m.truncateRows(rowMark);
  m.truncateCols(colMark);
  EXPECT_EQ(m.numRows(), 1);
  EXPECT_EQ(m.numCols(), 1);
  auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, kTol);
}

}  // namespace
}  // namespace optr::lp
