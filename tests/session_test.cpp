// ClipSession: the rule-independent/rule-dependent split of the solve
// pipeline. Unit tests cover overlay switching, the reference warm-start
// seed, and provenance parsing; the SessionSweep suite gates result
// equivalence (status, cost, bestBound) between session reuse and the
// historical per-(clip, rule) rebuild over the bundled example clips.
// bench_sweep runs the same gate over the FULL clip x rule matrix; the
// ctest legs here are sized for the suite's time budget.
#include "core/clip_session.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clip/clip_io.h"
#include "core/evaluator.h"
#include "core/opt_router.h"
#include "test_clips.h"

namespace optr::core {
namespace {

using clip::TrackPoint;

tech::RuleConfig rule(const char* name) {
  return tech::ruleByName(name).value();
}

std::vector<tech::RuleConfig> rules(std::initializer_list<const char*> names) {
  std::vector<tech::RuleConfig> out;
  for (const char* n : names) out.push_back(rule(n));
  return out;
}

OptRouterOptions fastRouter(int mipThreads = 1) {
  OptRouterOptions o;
  // Generous: the equivalence gates only hold for solves the deadline never
  // truncates (a limit-hit bound is scheduling-dependent), and ctest runs
  // this suite alongside other solver tests on shared cores.
  o.mip.timeLimitSec = 600;
  o.mip.threads = mipThreads;
  return o;
}

ClipSessionOptions sessionOptions(std::vector<tech::RuleConfig> universe) {
  ClipSessionOptions so;
  so.universe = std::move(universe);
  return so;
}

TEST(ClipSessionTest, ConstructionActivatesFirstUniverseRule) {
  auto c = testing::randomClip(1);
  ClipSession s(c, tech::Technology::n28_12t(),
                sessionOptions(rules({"RULE6", "RULE1"})));
  EXPECT_EQ(s.activeRule().name, "RULE6");
  EXPECT_FALSE(s.hasReference());
  EXPECT_GT(s.formulation().stats().numRows, 0);
}

TEST(ClipSessionTest, ActivateRuleRebuildsRuleLayerAndRestoresIt) {
  auto c = testing::randomClip(2);
  ClipSession s(c, tech::Technology::n28_12t(),
                sessionOptions(rules({"RULE1", "RULE9"})));
  const int baseRows = s.formulation().stats().numRows;

  // RULE9 (full via restriction) pushes eager via-adjacency rows RULE1
  // does not have.
  s.activateRule(rule("RULE9"));
  EXPECT_EQ(s.activeRule().name, "RULE9");
  const int rule9Rows = s.formulation().stats().numRows;
  EXPECT_GT(rule9Rows, baseRows);

  // Rolling back to RULE1 must drop those rows exactly: the overlay is a
  // checkpoint/rollback, not an accumulation.
  s.activateRule(rule("RULE1"));
  EXPECT_EQ(s.activeRule().name, "RULE1");
  EXPECT_EQ(s.formulation().stats().numRows, baseRows);

  // And the cycle is repeatable (second overlay sees the same model).
  s.activateRule(rule("RULE9"));
  EXPECT_EQ(s.formulation().stats().numRows, rule9Rows);
}

TEST(ClipSessionTest, FirstReferenceOfferSticks) {
  auto c = testing::randomClip(3);
  ClipSession s(c, tech::Technology::n28_12t(),
                sessionOptions(rules({"RULE1", "RULE6"})));
  OptRouter router(tech::Technology::n28_12t(), rule("RULE1"), fastRouter());
  RouteResult r1 = router.route(s, rule("RULE1"));
  ASSERT_TRUE(r1.hasSolution());
  ASSERT_TRUE(s.hasReference());
  EXPECT_EQ(s.referenceRuleName(), "RULE1");

  // A later solve's solution must not displace the reference.
  RouteResult r6 = router.route(s, rule("RULE6"));
  ASSERT_TRUE(r6.hasSolution());
  EXPECT_EQ(s.referenceRuleName(), "RULE1");
}

TEST(ClipSessionTest, CrossRuleWarmStartSeedsLaterRules) {
  // A via-free straight net: its RULE1 optimum is DRC-clean under every
  // via-restriction rule, so the cross-rule seed must validate and stick.
  auto c = testing::makeSimpleClip(
      4, 3, 2, {{TrackPoint{0, 1, 0}, TrackPoint{3, 1, 0}}});
  ClipSession s(c, tech::Technology::n28_12t(),
                sessionOptions(rules({"RULE1", "RULE9"})));
  OptRouter router(tech::Technology::n28_12t(), rule("RULE1"), fastRouter());
  RouteResult r1 = router.route(s, rule("RULE1"));
  ASSERT_EQ(r1.status, RouteStatus::kOptimal);
  EXPECT_NE(r1.warmStartKind, WarmStartKind::kCrossRule);

  RouteResult r9 = router.route(s, rule("RULE9"));
  ASSERT_EQ(r9.status, RouteStatus::kOptimal);
  EXPECT_TRUE(r9.warmStartUsed);
  EXPECT_EQ(r9.warmStartKind, WarmStartKind::kCrossRule);
  EXPECT_EQ(r9.cost, r1.cost);  // straight wire: no rule can tax it
}

TEST(ClipSessionTest, SessionRouteMatchesFreshRoute) {
  // Small deterministic clips that solve in milliseconds: the point is the
  // session plumbing (mask overlay, rollback, warm-start seeding), not
  // solver stress -- SessionSweep and bench_sweep cover real clips.
  std::vector<clip::Clip> clips = {
      testing::makeSimpleClip(3, 3, 2,
                              {{{0, 0, 0}, {0, 2, 0}}, {{2, 0, 0}, {2, 2, 0}}}),
      testing::makeSimpleClip(4, 4, 3,
                              {{{0, 0, 0}, {2, 2, 0}}, {{2, 0, 0}, {0, 2, 0}}}),
      testing::makeSimpleClip(4, 4, 2,
                              {{{1, 0, 0}, {1, 3, 0}}, {{0, 2, 0}, {3, 2, 0}}}),
  };
  auto techn = tech::Technology::n28_12t();
  auto sweep = rules({"RULE1", "RULE6", "RULE9"});
  for (std::size_t ci = 0; ci < clips.size(); ++ci) {
    ClipSession s(clips[ci], techn, sessionOptions(sweep));
    for (const tech::RuleConfig& rc : sweep) {
      OptRouter router(techn, rc, fastRouter());
      RouteResult fresh = router.route(clips[ci]);
      RouteResult reused = router.route(s, rc);
      EXPECT_EQ(reused.status, fresh.status) << rc.name << " clip " << ci;
      EXPECT_EQ(reused.cost, fresh.cost) << rc.name << " clip " << ci;
      EXPECT_EQ(reused.bestBound, fresh.bestBound)
          << rc.name << " clip " << ci;
    }
  }
}

TEST(ClipSessionTest, ProvenanceFromStringRoundTripsAndRejects) {
  for (Provenance p : {Provenance::kNone, Provenance::kIlpProven,
                       Provenance::kIlpIncumbent, Provenance::kMazeFallback}) {
    auto back = provenanceFromString(toString(p));
    ASSERT_TRUE(back.has_value()) << toString(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(provenanceFromString("").has_value());
  EXPECT_FALSE(provenanceFromString("ilp").has_value());
  EXPECT_FALSE(provenanceFromString("ILP-PROVEN").has_value());
  EXPECT_FALSE(provenanceFromString("maze-fallback ").has_value());
}

// ---------------------------------------------------------------------------
// SessionSweep: equivalence gates over the bundled example clips (the same
// clips the CLI walkthrough and the sanitizer batch sweep use). These run
// real MIP solves and are the slowest tests in the suite; bench_sweep covers
// the full matrix at both thread counts.

/// Loads the bundled example set and keeps the clips named in `ids`. The
/// heavyweight sbox1 is excluded from ctest legs: its RULE9-11 solves run
/// to any reasonable deadline, and the equality contract only covers
/// proven verdicts -- bench_sweep handles the full set.
std::vector<clip::Clip> exampleClips(std::initializer_list<const char*> ids) {
  auto loaded = clip::loadClips(OPTR_EXAMPLES_CLIPS);
  EXPECT_TRUE(loaded.isOk()) << loaded.status().message();
  std::vector<clip::Clip> out;
  if (!loaded.isOk()) return out;
  for (const clip::Clip& c : loaded.value()) {
    for (const char* id : ids) {
      if (c.id == id) out.push_back(c);
    }
  }
  EXPECT_EQ(out.size(), ids.size());
  return out;
}

bool provenStatus(RouteStatus s) {
  return s == RouteStatus::kOptimal || s == RouteStatus::kInfeasible;
}

void expectEquivalent(const EvaluationResult& a, const EvaluationResult& b) {
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (std::size_t ri = 0; ri < a.rules.size(); ++ri) {
    const RuleOutcome& ra = a.rules[ri];
    const RuleOutcome& rb = b.rules[ri];
    ASSERT_EQ(ra.clips.size(), rb.clips.size()) << ra.rule.name;
    for (std::size_t i = 0; i < ra.clips.size(); ++i) {
      // The clips are sized to always prove within the budget; a truncated
      // solve would make the equality below vacuous, so it fails loudly.
      EXPECT_TRUE(provenStatus(ra.clips[i].status))
          << ra.rule.name << " clip " << i << " rebuild "
          << toString(ra.clips[i].status);
      EXPECT_EQ(rb.clips[i].status, ra.clips[i].status)
          << ra.rule.name << " clip " << i;
      EXPECT_EQ(rb.clips[i].cost, ra.clips[i].cost)
          << ra.rule.name << " clip " << i;
      EXPECT_EQ(rb.clips[i].bestBound, ra.clips[i].bestBound)
          << ra.rule.name << " clip " << i;
    }
  }
}

EvaluationResult runSweep(const std::vector<clip::Clip>& clips,
                          std::vector<tech::RuleConfig> sweep,
                          bool sessionReuse, int mipThreads) {
  EvaluationOptions eo;
  eo.router = fastRouter(mipThreads);
  eo.rules = std::move(sweep);
  eo.sessionReuse = sessionReuse;
  return RuleEvaluator(tech::Technology::n28_12t(), eo).evaluate(clips);
}

TEST(SessionSweep, ExampleClipsAllRulesMatchRebuildSerial) {
  // sbox3 proves every applicable rule in seconds; bench_sweep runs all.
  auto clips = exampleClips({"sbox3"});
  ASSERT_FALSE(clips.empty());
  auto techn = tech::Technology::n28_12t();
  std::vector<tech::RuleConfig> sweep;
  for (const tech::RuleConfig& rc : tech::table3Rules()) {
    if (tech::ruleApplicable(rc, techn)) sweep.push_back(rc);
  }
  ASSERT_FALSE(sweep.empty());
  auto rebuilt = runSweep(clips, sweep, /*sessionReuse=*/false, 1);
  auto reused = runSweep(clips, sweep, /*sessionReuse=*/true, 1);
  expectEquivalent(rebuilt, reused);
}

TEST(SessionSweep, ExampleClipMatchesRebuildAtFourMipThreads) {
  auto clips = exampleClips({"sbox11"});
  ASSERT_FALSE(clips.empty());
  auto sweep = rules({"RULE1", "RULE6", "RULE9"});
  auto rebuilt = runSweep(clips, sweep, /*sessionReuse=*/false, 4);
  auto reused = runSweep(clips, sweep, /*sessionReuse=*/true, 4);
  expectEquivalent(rebuilt, reused);
}

}  // namespace
}  // namespace optr::core
