// Fleet fabric: lease-table failure ordering, wire protocol, crash-tolerant
// checkpoint merging, and end-to-end SweepCoordinator runs -- including ones
// where workers crash, hang, drop heartbeats, or garble results -- that must
// produce the same rows as the in-process BatchRunner.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "harness/batch_runner.h"
#include "harness/checkpoint_io.h"
#include "harness/lease_table.h"
#include "harness/sweep_coordinator.h"
#include "harness/sweep_protocol.h"
#include "harness/sweep_worker.h"
#include "obs/analyze.h"
#include "obs/trace.h"
#include "test_clips.h"

namespace optr::harness {
namespace {

using clip::TrackPoint;

std::vector<clip::Clip> twoClips() {
  clip::Clip a = testing::makeSimpleClip(
      4, 4, 2, {{TrackPoint{0, 0, 0}, TrackPoint{3, 3, 0}}});
  a.id = "clipA";
  clip::Clip b = testing::makeSimpleClip(
      4, 4, 2,
      {{TrackPoint{0, 0, 0}, TrackPoint{3, 0, 0}},
       {TrackPoint{0, 2, 0}, TrackPoint{3, 2, 0}}});
  b.id = "clipB";
  return {a, b};
}

std::vector<tech::RuleConfig> twoRules() {
  return {tech::ruleByName("RULE1").value(), tech::ruleByName("RULE2").value()};
}

std::string tempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + ".jsonl";
}

void removeFleetFiles(const std::string& checkpoint) {
  std::remove(checkpoint.c_str());
  for (int slot = 0; slot < 8; ++slot) {
    std::remove(workerCheckpointPath(checkpoint, slot).c_str());
  }
}

/// The equivalence reference: the same matrix through the in-process
/// BatchRunner on the rebuild path (exactly what each fleet worker runs).
BatchReport reference(const std::vector<clip::Clip>& clips,
                      const std::vector<tech::RuleConfig>& rules) {
  BatchOptions opt;
  opt.router.mip.timeLimitSec = 20.0;
  opt.isolateTasks = false;
  opt.sessionReuse = false;
  opt.threads = 1;
  return BatchRunner(opt).run(clips, rules);
}

void expectRowsMatch(const std::vector<BatchRow>& got,
                     const std::vector<BatchRow>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].clipId, want[i].clipId) << "row " << i;
    EXPECT_EQ(got[i].ruleName, want[i].ruleName) << "row " << i;
    EXPECT_EQ(got[i].status, want[i].status) << "row " << i;
    EXPECT_EQ(got[i].cost, want[i].cost) << "row " << i;
    EXPECT_EQ(got[i].bestBound, want[i].bestBound) << "row " << i;
    EXPECT_EQ(got[i].wirelength, want[i].wirelength) << "row " << i;
    EXPECT_EQ(got[i].vias, want[i].vias) << "row " << i;
  }
}

SweepCoordinatorOptions fleetOptions() {
  SweepCoordinatorOptions opt;
  opt.router.mip.timeLimitSec = 20.0;
  opt.workers = 2;
  return opt;
}

BatchRow rowFor(const std::string& clipId, const std::string& rule,
                double cost) {
  BatchRow row;
  row.clipId = clipId;
  row.ruleName = rule;
  row.status = core::RouteStatus::kOptimal;
  row.cost = cost;
  return row;
}

// ---------------------------------------------------------------------------
// LeaseTable: failure-ordering edge cases, no IO, no clocks.

LeaseOptions leaseOpts(double leaseSec, double timeoutSec, int maxAttempts) {
  LeaseOptions o;
  o.leaseSec = leaseSec;
  o.taskTimeoutSec = timeoutSec;
  o.maxAttempts = maxAttempts;
  return o;
}

TEST(LeaseTable, GrantsInMatrixOrderAndSettles) {
  LeaseTable table(leaseOpts(5, 60, 3));
  table.addTask("a", "R1");
  table.addTask("a", "R2");
  LeaseGrant g1, g2;
  ASSERT_TRUE(table.grant(0, 0.0, g1));
  EXPECT_EQ(g1.clipId, "a");
  EXPECT_EQ(g1.ruleName, "R1");
  EXPECT_EQ(g1.attempt, 1);
  ASSERT_TRUE(table.grant(1, 0.0, g2));
  EXPECT_EQ(g2.ruleName, "R2");
  LeaseGrant g3;
  EXPECT_FALSE(table.grant(0, 0.0, g3));  // nothing left to lease

  EXPECT_EQ(table.complete(g1.key(), 0, rowFor("a", "R1", 1.0)),
            ResultOutcome::kAccepted);
  EXPECT_EQ(table.complete(g2.key(), 1, rowFor("a", "R2", 2.0)),
            ResultOutcome::kAccepted);
  EXPECT_TRUE(table.allSettled());
  auto rows = table.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].ruleName, "R1");  // matrix order regardless of finish
  EXPECT_EQ(rows[1].ruleName, "R2");
}

TEST(LeaseTable, DuplicateResultAfterReassignmentIsDroppedNotApplied) {
  LeaseTable table(leaseOpts(5, 60, 3));
  table.addTask("a", "R1");
  LeaseGrant g;
  ASSERT_TRUE(table.grant(0, 0.0, g));

  // Worker 0 goes silent; the lease expires and the task is re-assigned.
  auto expired = table.expire(6.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, LeaseFailure::kHeartbeatLost);
  EXPECT_FALSE(expired[0].quarantined);
  LeaseGrant g2;
  ASSERT_TRUE(table.grant(1, 6.0, g2));
  EXPECT_EQ(g2.attempt, 2);

  // The replacement finishes first; worker 0's zombie result arrives late.
  EXPECT_EQ(table.complete(g.key(), 1, rowFor("a", "R1", 2.0)),
            ResultOutcome::kAccepted);
  EXPECT_EQ(table.complete(g.key(), 0, rowFor("a", "R1", 99.0)),
            ResultOutcome::kDuplicate);
  ASSERT_NE(table.settledRow(g.key()), nullptr);
  EXPECT_EQ(table.settledRow(g.key())->cost, 2.0);  // first writer won
  EXPECT_TRUE(table.allSettled());
}

TEST(LeaseTable, InFlightResultFromRevokedLeaseIsAcceptedStale) {
  LeaseTable table(leaseOpts(5, 60, 3));
  table.addTask("a", "R1");
  LeaseGrant g;
  ASSERT_TRUE(table.grant(0, 0.0, g));
  table.expire(6.0);  // revoke worker 0's lease...
  LeaseGrant g2;
  ASSERT_TRUE(table.grant(1, 6.0, g2));

  // ...but its result was already in flight. Solves are deterministic, so
  // the stale answer is the answer; the replacement becomes the duplicate.
  EXPECT_EQ(table.complete(g.key(), 0, rowFor("a", "R1", 2.0)),
            ResultOutcome::kAcceptedStale);
  EXPECT_EQ(table.complete(g.key(), 1, rowFor("a", "R1", 2.0)),
            ResultOutcome::kDuplicate);
  EXPECT_EQ(table.state(g.key()), TaskState::kDone);
  EXPECT_TRUE(table.allSettled());
}

TEST(LeaseTable, HeartbeatsExtendTheLeaseButNeverTheTaskDeadline) {
  LeaseTable table(leaseOpts(5, 8, 3));
  table.addTask("a", "R1");
  LeaseGrant g;
  ASSERT_TRUE(table.grant(0, 0.0, g));

  // Dutiful heartbeats keep the lease alive past the bare lease window...
  EXPECT_TRUE(table.heartbeat(g.key(), 0, 4.0));
  EXPECT_TRUE(table.expire(6.0).empty());
  EXPECT_TRUE(table.heartbeat(g.key(), 0, 7.0));

  // ...but the hard task deadline is immune to them: a worker that
  // heartbeats forever without answering is hung, not healthy.
  auto expired = table.expire(8.5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, LeaseFailure::kTaskTimeout);

  // Stale heartbeats from the revoked lease are ignored.
  EXPECT_FALSE(table.heartbeat(g.key(), 0, 9.0));
}

TEST(LeaseTable, QuarantinesAfterMaxAttemptsWithHonestErrorRow) {
  LeaseTable table(leaseOpts(5, 60, 2));
  table.addTask("a", "R1");
  LeaseGrant g;
  ASSERT_TRUE(table.grant(0, 0.0, g));
  auto first = table.expire(6.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(first[0].quarantined);

  ASSERT_TRUE(table.grant(1, 6.0, g));
  auto second = table.expire(12.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].quarantined);
  EXPECT_EQ(table.state(g.key()), TaskState::kQuarantined);
  EXPECT_TRUE(table.allSettled());

  const BatchRow* row = table.settledRow(g.key());
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->status, core::RouteStatus::kError);
  EXPECT_EQ(row->errorCode, ErrorCode::kDeadline);
  EXPECT_NE(row->errorMessage.find("quarantined after 2 attempts"),
            std::string::npos)
      << row->errorMessage;

  // A result for a quarantined task stays dropped: given up means given up
  // (its error row is already durable in the checkpoint).
  EXPECT_EQ(table.complete(g.key(), 1, rowFor("a", "R1", 1.0)),
            ResultOutcome::kDuplicate);
}

TEST(LeaseTable, WorkerDeathReleasesLeasesAndMarksCrashedOnQuarantine) {
  LeaseTable table(leaseOpts(5, 60, 1));
  table.addTask("a", "R1");
  table.addTask("a", "R2");
  LeaseGrant g1, g2;
  ASSERT_TRUE(table.grant(0, 0.0, g1));
  ASSERT_TRUE(table.grant(0, 0.0, g2));

  auto released = table.releaseWorker(0);
  ASSERT_EQ(released.size(), 2u);
  for (const auto& r : released) {
    EXPECT_EQ(r.reason, LeaseFailure::kWorkerDied);
    EXPECT_TRUE(r.quarantined);  // maxAttempts 1: straight to quarantine
  }
  const BatchRow* row = table.settledRow(g1.key());
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->errorCode, ErrorCode::kCrash);
  EXPECT_TRUE(row->crashed);
}

TEST(LeaseTable, NackRequeuesAndCarriesTheCodeIntoQuarantine) {
  LeaseTable table(leaseOpts(5, 60, 2));
  table.addTask("a", "R1");
  LeaseGrant g;
  ASSERT_TRUE(table.grant(0, 0.0, g));
  auto first = table.nack(g.key(), 0, ErrorCode::kUnavailable, "unknown rule");
  EXPECT_FALSE(first.quarantined);
  EXPECT_EQ(table.state(g.key()), TaskState::kPending);

  ASSERT_TRUE(table.grant(1, 1.0, g));
  auto second = table.nack(g.key(), 1, ErrorCode::kUnavailable, "unknown rule");
  EXPECT_TRUE(second.quarantined);
  const BatchRow* row = table.settledRow(g.key());
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->errorCode, ErrorCode::kUnavailable);
}

TEST(LeaseTable, ResumedRowsAreFirstWriterWinsAndUnknownKeysIgnored) {
  LeaseTable table(leaseOpts(5, 60, 3));
  table.addTask("a", "R1");
  EXPECT_TRUE(table.markResumed(rowFor("a", "R1", 1.0)));
  EXPECT_FALSE(table.markResumed(rowFor("a", "R1", 2.0)));  // already done
  EXPECT_FALSE(table.markResumed(rowFor("zzz", "R9", 3.0)));  // not in matrix
  EXPECT_TRUE(table.allSettled());
  EXPECT_EQ(table.settledRow(rowFor("a", "R1", 0).key())->cost, 1.0);
}

TEST(LeaseTable, QuarantineAllPendingDrainsTheBacklog) {
  LeaseTable table(leaseOpts(5, 60, 3));
  table.addTask("a", "R1");
  table.addTask("a", "R2");
  LeaseGrant g;
  ASSERT_TRUE(table.grant(0, 0.0, g));
  auto keys = table.quarantineAllPending(ErrorCode::kUnavailable,
                                         "fleet exhausted");
  ASSERT_EQ(keys.size(), 1u);  // the leased task is untouched
  EXPECT_EQ(table.pending(), 0);
  EXPECT_EQ(table.leased(), 1);
  const BatchRow* row = table.settledRow(keys[0]);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->errorCode, ErrorCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(SweepProtocol, RoundTripsEveryMessageType) {
  SweepMessage m = decodeMessage(encodeHello("w3", 4242));
  EXPECT_EQ(m.type, MsgType::kHello);
  EXPECT_EQ(m.protoVersion, kSweepProtocolVersion);
  EXPECT_EQ(m.workerId, "w3");
  EXPECT_EQ(m.pid, 4242);

  m = decodeMessage(encodeLease("clip \"x\"", "RULE3", 5.5, 2));
  EXPECT_EQ(m.type, MsgType::kLease);
  EXPECT_EQ(m.clipId, "clip \"x\"");
  EXPECT_EQ(m.ruleName, "RULE3");
  EXPECT_DOUBLE_EQ(m.leaseSec, 5.5);
  EXPECT_EQ(m.attempt, 2);

  m = decodeMessage(encodeHeartbeat("c", "RULE1"));
  EXPECT_EQ(m.type, MsgType::kHeartbeat);
  EXPECT_EQ(m.taskKey(), "c\x1fRULE1");

  BatchRow row = rowFor("c", "RULE1", 12.25);
  row.provenance = core::Provenance::kIlpProven;
  row.bestBound = 12.25;
  row.nodes = 77;
  m = decodeMessage(encodeResult(row));
  EXPECT_EQ(m.type, MsgType::kResult);
  EXPECT_EQ(m.row.clipId, "c");
  EXPECT_EQ(m.row.cost, 12.25);
  EXPECT_EQ(m.row.provenance, core::Provenance::kIlpProven);
  EXPECT_EQ(m.row.nodes, 77);

  m = decodeMessage(encodeNack("c", "RULE1", ErrorCode::kUnavailable, "why"));
  EXPECT_EQ(m.type, MsgType::kNack);
  EXPECT_EQ(m.errorCode, ErrorCode::kUnavailable);
  EXPECT_EQ(m.message, "why");

  EXPECT_EQ(decodeMessage(encodeShutdown()).type, MsgType::kShutdown);
}

TEST(SweepProtocol, LeaseTraceContextRoundTripsAndDefaultsToAbsent) {
  SweepMessage m = decodeMessage(
      encodeLease("c", "RULE2", 5.5, 1, "9f3a6c01d2e4b875", 42));
  ASSERT_EQ(m.type, MsgType::kLease);
  EXPECT_EQ(m.clipId, "c");
  EXPECT_EQ(m.traceId, "9f3a6c01d2e4b875");
  EXPECT_EQ(m.parentSpan, 42u);

  // Context-free leases (the default) must not grow new keys: the frame
  // stays byte-compatible with pre-propagation workers.
  std::string line = encodeLease("c", "RULE2", 5.5, 1);
  EXPECT_EQ(line.find("traceId"), std::string::npos);
  EXPECT_EQ(line.find("parentSpan"), std::string::npos);
  m = decodeMessage(line);
  ASSERT_EQ(m.type, MsgType::kLease);
  EXPECT_TRUE(m.traceId.empty());
  EXPECT_EQ(m.parentSpan, 0u);
}

TEST(SweepProtocol, TruncatedOrCorruptLinesDecodeAsGarbled) {
  EXPECT_EQ(decodeMessage("").type, MsgType::kGarbled);
  EXPECT_EQ(decodeMessage("not json").type, MsgType::kGarbled);
  EXPECT_EQ(decodeMessage("{\"t\":\"no-such-type\"}").type, MsgType::kGarbled);
  std::string result = encodeResult(rowFor("c", "RULE1", 1.0));
  // Every strict prefix of a torn result line must decode as garbled, never
  // as a half-filled result.
  for (std::size_t cut = 0; cut < result.size(); ++cut) {
    EXPECT_EQ(decodeMessage(result.substr(0, cut)).type, MsgType::kGarbled)
        << "prefix length " << cut;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint IO: torn lines, merge listing.

TEST(CheckpointIO, TornAndMalformedLinesAreSkippedAndCounted) {
  std::string path = tempPath("ckpt_io");
  std::string lineA = toJsonLine(rowFor("a", "R1", 1.0));
  std::string lineADup = toJsonLine(rowFor("a", "R1", 9.0));
  std::string lineB = toJsonLine(rowFor("b", "R1", 2.0));
  std::string lineC = toJsonLine(rowFor("c", "R1", 3.0));
  {
    std::ofstream out(path, std::ios::trunc);
    out << lineA << "\n"
        << "garbage not json\n"
        << lineADup << "\n"
        << lineB << "\n"
        << lineC.substr(0, lineC.size() / 2);  // torn: no newline, no tail
  }
  std::unordered_map<std::string, BatchRow> rows;
  CheckpointLoadStats stats = loadCheckpoint(path, rows);
  EXPECT_TRUE(stats.fileExists);
  EXPECT_EQ(stats.loaded, 2);
  EXPECT_EQ(stats.duplicates, 1);
  EXPECT_EQ(stats.malformed, 1);
  EXPECT_EQ(stats.torn, 1);
  EXPECT_EQ(stats.skipped(), 2);
  EXPECT_EQ(rows.at(rowFor("a", "R1", 0).key()).cost, 1.0);  // first writer
  EXPECT_EQ(rows.count(rowFor("c", "R1", 0).key()), 0u);     // torn: re-run
  std::remove(path.c_str());

  CheckpointLoadStats missing = loadCheckpoint(path + ".nope", rows);
  EXPECT_FALSE(missing.fileExists);
  EXPECT_EQ(missing.skipped(), 0);
}

TEST(CheckpointIO, ListsWorkerCheckpointsSortedBySlot) {
  std::string base = tempPath("ckpt_list");
  auto touch = [](const std::string& p) { std::ofstream(p) << ""; };
  touch(base);
  touch(workerCheckpointPath(base, 10));
  touch(workerCheckpointPath(base, 2));
  touch(workerCheckpointPath(base, 0));
  touch(base + ".wx");        // non-numeric suffix: not a worker file
  touch(base + ".unrelated");
  auto files = listWorkerCheckpoints(base);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], workerCheckpointPath(base, 0));
  EXPECT_EQ(files[1], workerCheckpointPath(base, 2));
  EXPECT_EQ(files[2], workerCheckpointPath(base, 10));
  std::remove(base.c_str());
  std::remove((base + ".wx").c_str());
  std::remove((base + ".unrelated").c_str());
  for (int s : {0, 2, 10}) {
    std::remove(workerCheckpointPath(base, s).c_str());
  }
}

// ---------------------------------------------------------------------------
// SweepWorker over raw pipes (no coordinator).

TEST(SweepWorker, ServesLeasesAndNacksUnknownTasks) {
  int toWorker[2], fromWorker[2];
  ASSERT_EQ(pipe(toWorker), 0);
  ASSERT_EQ(pipe(fromWorker), 0);

  SweepWorkerOptions wo;
  wo.router.mip.timeLimitSec = 20.0;
  wo.workerId = "wtest";
  wo.heartbeatSec = 0.05;
  auto clips = twoClips();
  auto rules = twoRules();
  std::thread server([&] {
    SweepWorker(wo).serve(toWorker[0], fromWorker[1], clips, rules);
    close(fromWorker[1]);
  });

  FILE* in = fdopen(fromWorker[0], "r");
  FILE* out = fdopen(toWorker[1], "w");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  auto send = [&](const std::string& line) {
    std::fprintf(out, "%s\n", line.c_str());
    std::fflush(out);
  };
  auto recv = [&]() -> SweepMessage {
    char buf[65536];
    // Skip heartbeats: this test is about the request/response pairs.
    for (;;) {
      if (!std::fgets(buf, sizeof buf, in)) return SweepMessage{};
      std::string line(buf);
      while (!line.empty() && line.back() == '\n') line.pop_back();
      SweepMessage m = decodeMessage(line);
      if (m.type != MsgType::kHeartbeat) return m;
    }
  };

  EXPECT_EQ(recv().type, MsgType::kHello);

  send(encodeLease("clipA", "RULE1", 5.0, 1));
  SweepMessage res = recv();
  ASSERT_EQ(res.type, MsgType::kResult);
  EXPECT_EQ(res.row.clipId, "clipA");
  EXPECT_EQ(res.row.ruleName, "RULE1");

  send(encodeLease("no-such-clip", "RULE1", 5.0, 1));
  SweepMessage nack = recv();
  ASSERT_EQ(nack.type, MsgType::kNack);
  EXPECT_EQ(nack.errorCode, ErrorCode::kUnavailable);

  send(encodeShutdown());
  server.join();
  std::fclose(in);
  std::fclose(out);
  close(toWorker[0]);
}

// ---------------------------------------------------------------------------
// End-to-end fleet runs. Every test gates on row equivalence with the
// in-process BatchRunner reference -- the fleet's correctness contract.

TEST(SweepFleet, MatchesBatchRunnerRowByRow) {
  auto clips = twoClips();
  auto rules = twoRules();
  BatchReport want = reference(clips, rules);

  FleetReport got = SweepCoordinator(fleetOptions()).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_EQ(got.executed, 4);
  EXPECT_EQ(got.workerDeaths, 0);
  EXPECT_EQ(got.quarantined, 0);
  expectRowsMatch(got.rows, want.rows);
}

#if OPTR_OBS_ENABLED
TEST(SweepFleet, ForkedWorkerTracesStitchIntoOneCausalTree) {
  auto clips = twoClips();
  auto rules = twoRules();
  const std::string coordTrace = tempPath("fleet_stitch_coord");
  // Worker trace paths must be minted in the PARENT: tempPath embeds
  // getpid(), which changes across the fork, and the parent needs to find
  // the files afterwards. The hook (running in the child) only indexes.
  std::vector<std::string> workerTraces;
  for (int slot = 0; slot < 4; ++slot)
    for (int gen = 0; gen < 4; ++gen)
      workerTraces.push_back(
          tempPath(("fleet_stitch_w" + std::to_string(slot) + "g" +
                    std::to_string(gen))
                       .c_str()));
  auto workerTrace = [&workerTraces](int slot, int generation) {
    return workerTraces[static_cast<std::size_t>(slot) * 4 +
                        static_cast<std::size_t>(generation)];
  };
  std::remove(coordTrace.c_str());
  for (const std::string& p : workerTraces) std::remove(p.c_str());

  ASSERT_TRUE(obs::TraceSession::start(coordTrace).isOk());
  SweepCoordinatorOptions opt = fleetOptions();  // 2 forked workers
  opt.workerInitHook = [workerTraces](int slot, int generation) {
    // Fork child: abandon the inherited coordinator file (no footer --
    // that is the parent's to write) and trace into a file of its own.
    obs::TraceSession::abandon();
    if (slot < 4 && generation < 4) {
      (void)obs::TraceSession::start(
          workerTraces[static_cast<std::size_t>(slot) * 4 +
                       static_cast<std::size_t>(generation)]);
    }
  };
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  obs::TraceSession::stop();
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_EQ(got.executed, 4);

  std::vector<std::string> files = {coordTrace};
  for (int slot = 0; slot < 4; ++slot)
    for (int gen = 0; gen < 4; ++gen)
      if (std::ifstream(workerTrace(slot, gen)).good())
        files.push_back(workerTrace(slot, gen));
  ASSERT_GE(files.size(), 3u) << "both workers must have written trace files";

  auto mergedOr = obs::loadTraces(files);
  ASSERT_TRUE(mergedOr.isOk()) << mergedOr.status().message();
  std::map<std::uint64_t, const obs::TraceEntry*> byId;
  const obs::TraceEntry* run = nullptr;
  for (const obs::TraceEntry& e : mergedOr.value()) {
    if (e.type != "span") continue;
    byId[e.id] = &e;
    if (e.name == "fleet.run") run = &e;
  }
  ASSERT_NE(run, nullptr);
  // Every worker-side task span must stitch under a coordinator grant span
  // via the lease-frame context, and through it chain to the single
  // fleet.run root -- cross-process parentage asserted span by span.
  int tasks = 0;
  for (const obs::TraceEntry& e : mergedOr.value()) {
    if (e.name != "fleet.task") continue;
    ++tasks;
    EXPECT_TRUE(e.stitched) << "unstitched task: " << e.detail;
    auto grant = byId.find(e.parent);
    ASSERT_NE(grant, byId.end()) << "task parent missing: " << e.detail;
    EXPECT_EQ(grant->second->name, "fleet.grant");
    EXPECT_EQ(grant->second->parent, run->id);
    // Work conservation: no task outlasts the run that awaited it.
    EXPECT_LE(e.dur, run->dur) << "task outlives fleet.run: " << e.detail;
  }
  EXPECT_EQ(tasks, 4);
}
#endif  // OPTR_OBS_ENABLED

TEST(SweepFleet, SurvivesWorkerCrashesViaRespawnAndReassignment) {
  auto clips = twoClips();
  auto rules = twoRules();
  BatchReport want = reference(clips, rules);

  SweepCoordinatorOptions opt = fleetOptions();
  // Generation 0 of both slots dies the instant it takes a lease; the
  // respawned generation is clean and must finish the sweep.
  opt.workerInitHook = [](int /*slot*/, int generation) {
    if (generation == 0) {
      fault::arm(fault::Site::kWorkerCrash, /*countdown=*/0, /*times=*/1);
    }
  };
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_GE(got.workerDeaths, 2);
  EXPECT_GE(got.leasesReassigned, 2);
  EXPECT_GE(got.workersSpawned, 4);  // 2 initial + at least 2 respawns
  EXPECT_EQ(got.quarantined, 0);
  expectRowsMatch(got.rows, want.rows);
}

TEST(SweepFleet, ReclaimsHungWorkerThatKeepsHeartbeating) {
  auto clips = twoClips();
  std::vector<tech::RuleConfig> rules = {tech::ruleByName("RULE1").value()};
  BatchReport want = reference(clips, rules);

  SweepCoordinatorOptions opt = fleetOptions();
  opt.workers = 1;
  opt.leaseSec = 0.5;         // heartbeats arrive every 0.125s and keep this
  opt.taskTimeoutSec = 1.2;   // ...so only the hard deadline can fire
  opt.workerInitHook = [](int /*slot*/, int generation) {
    if (generation == 0) {
      fault::arm(fault::Site::kWorkerHang, /*countdown=*/0, /*times=*/1);
    }
  };
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_GE(got.leasesExpired, 1);  // the task-timeout reclaim
  EXPECT_GE(got.workerDeaths, 1);   // the SIGKILLed hung worker
  EXPECT_EQ(got.quarantined, 0);
  expectRowsMatch(got.rows, want.rows);
}

TEST(SweepFleet, DetectsLostHeartbeatsWithoutWaitingForTaskDeadline) {
  auto clips = twoClips();
  std::vector<tech::RuleConfig> rules = {tech::ruleByName("RULE1").value()};
  BatchReport want = reference(clips, rules);

  SweepCoordinatorOptions opt = fleetOptions();
  opt.workers = 1;
  opt.leaseSec = 0.6;
  opt.taskTimeoutSec = 30.0;  // far away: completion proves the heartbeat
                              // detector, not the task deadline, fired
  opt.workerInitHook = [](int /*slot*/, int generation) {
    if (generation == 0) {
      fault::arm(fault::Site::kWorkerHang, 0, 1);
      fault::arm(fault::Site::kDroppedHeartbeat, 0, fault::kAlways);
    }
  };
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_GE(got.leasesExpired, 1);
  EXPECT_EQ(got.quarantined, 0);
  expectRowsMatch(got.rows, want.rows);
}

TEST(SweepFleet, RecoversTaskWhoseResultWasGarbledOnTheWire) {
  auto clips = twoClips();
  std::vector<tech::RuleConfig> rules = {tech::ruleByName("RULE1").value()};
  BatchReport want = reference(clips, rules);

  SweepCoordinatorOptions opt = fleetOptions();
  opt.workers = 1;
  opt.leaseSec = 0.5;  // the garbling worker goes idle-and-silent; its lease
                       // must expire on heartbeat loss, not wedge the run
  opt.workerInitHook = [](int /*slot*/, int generation) {
    if (generation == 0) {
      fault::arm(fault::Site::kGarbledMessage, /*countdown=*/0, /*times=*/1);
    }
  };
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_GE(got.garbledMessages, 1);
  EXPECT_GE(got.leasesExpired, 1);
  EXPECT_EQ(got.quarantined, 0);
  expectRowsMatch(got.rows, want.rows);
}

TEST(SweepFleet, CoordinatorRestartResumesFromMergedCheckpoints) {
  auto clips = twoClips();
  auto rules = twoRules();
  BatchReport want = reference(clips, rules);

  std::string ckpt = tempPath("fleet_restart");
  removeFleetFiles(ckpt);

  SweepCoordinatorOptions opt = fleetOptions();
  opt.checkpointPath = ckpt;
  opt.stopAfterResults = 2;  // coordinator "crashes" mid-run: workers are
                             // SIGKILLed, no shutdown handshake
  FleetReport first = SweepCoordinator(opt).run(clips, rules);
  EXPECT_TRUE(first.stoppedEarly);
  EXPECT_GE(first.executed, 2);

  opt.stopAfterResults = -1;
  FleetReport second = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(second.status.isOk()) << second.status.message();
  EXPECT_GE(second.resumed, 2);  // proven tasks are never re-solved
  EXPECT_EQ(second.resumed + second.executed, 4);
  EXPECT_FALSE(second.stoppedEarly);
  expectRowsMatch(second.rows, want.rows);
  removeFleetFiles(ckpt);
}

TEST(SweepFleet, MergesRowsOnlyAWorkerFileProved) {
  auto clips = twoClips();
  auto rules = twoRules();
  BatchReport want = reference(clips, rules);

  // Simulate a predecessor that died after its worker checkpointed a row
  // but before the coordinator merged it: the row exists only in .w0.
  std::string ckpt = tempPath("fleet_merge");
  removeFleetFiles(ckpt);
  {
    std::ofstream out(workerCheckpointPath(ckpt, 0));
    out << toJsonLine(want.rows[0]) << "\n";
  }

  SweepCoordinatorOptions opt = fleetOptions();
  opt.checkpointPath = ckpt;
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_EQ(got.resumed, 1);
  EXPECT_EQ(got.recoveredFromWorkerFiles, 1);
  EXPECT_EQ(got.executed, 3);
  expectRowsMatch(got.rows, want.rows);

  // The merge is durable: the main checkpoint now carries the recovered row
  // and a fresh resume no longer needs the worker file.
  std::unordered_map<std::string, BatchRow> merged;
  loadCheckpoint(ckpt, merged);
  EXPECT_EQ(merged.count(want.rows[0].key()), 1u);
  removeFleetFiles(ckpt);
}

TEST(SweepFleet, TornCheckpointLinesAreSkippedAndReRun) {
  auto clips = twoClips();
  auto rules = twoRules();
  BatchReport want = reference(clips, rules);

  std::string ckpt = tempPath("fleet_torn");
  removeFleetFiles(ckpt);
  {
    std::ofstream out(ckpt);
    std::string good = toJsonLine(want.rows[0]);
    std::string torn = toJsonLine(want.rows[1]);
    out << good << "\n" << torn.substr(0, torn.size() / 2);
  }

  SweepCoordinatorOptions opt = fleetOptions();
  opt.checkpointPath = ckpt;
  FleetReport got = SweepCoordinator(opt).run(clips, rules);
  ASSERT_TRUE(got.status.isOk()) << got.status.message();
  EXPECT_EQ(got.resumed, 1);
  EXPECT_EQ(got.checkpointSkipped, 1);
  EXPECT_EQ(got.executed, 3);  // the torn row re-ran
  expectRowsMatch(got.rows, want.rows);
  removeFleetFiles(ckpt);
}

}  // namespace
}  // namespace optr::harness
