// Compiles the obs headers with OPTR_OBS_DISABLED (forced by this target's
// compile definitions, see tests/CMakeLists.txt) and checks the no-op
// surface: every call site in the solver stack must still compile and cost
// nothing, and TraceSession::start must say *why* tracing is unavailable.
//
// This is the "disabled build compiles" leg of the obs test matrix -- the
// rest of the suite (obs_test) runs against the enabled implementation.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef OPTR_OBS_DISABLED
#error obs_disabled_test must be compiled with OPTR_OBS_DISABLED
#endif
static_assert(OPTR_OBS_ENABLED == 0,
              "the obs gate macro must report disabled here");

namespace optr {
namespace {

TEST(ObsDisabled, MetricsAreInertButCallable) {
  auto& m = obs::metrics();
  // The full hot-path API must be expressible (same signatures as the
  // enabled build) and observable values stay zero.
  obs::Counter& c = m.counter("lp.pivots");
  c.add();
  c.add(100);
  EXPECT_EQ(c.value(), 0);

  obs::Gauge& g = m.gauge("some.gauge");
  g.set(5);
  g.add(1);
  EXPECT_EQ(g.value(), 0);

  obs::Histogram& h = m.histogram("some.hist");
  h.record(3.5);

  obs::MetricsSnapshot snap = m.snapshot();
  EXPECT_TRUE(snap.entries().empty());
  EXPECT_EQ(snap.value("lp.pivots"), 0);
  EXPECT_EQ(snap.find("lp.pivots"), nullptr);
  EXPECT_EQ(obs::MetricsSnapshot::delta(snap, snap).entries().size(), 0u);
  EXPECT_EQ(snap.toJson(), "{}");
  m.resetAll();
}

TEST(ObsDisabled, TraceSessionReportsCompiledOut) {
  Status s = obs::TraceSession::start("/tmp/should-not-be-created.jsonl");
  ASSERT_FALSE(s.isOk());
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_NE(s.message().find("compiled out"), std::string::npos);
  EXPECT_FALSE(obs::TraceSession::active());
  obs::TraceSession::stop();
  obs::TraceSession::flushAll();
  obs::TraceSession::onFork(123);
  EXPECT_EQ(obs::TraceSession::currentSpanId(), 0u);
}

TEST(ObsDisabled, SpanAndEventShellsCompileToNothing) {
  // Exactly the shapes the solver stack uses, including the cross-thread
  // parent override and the initializer-list event args.
  obs::Span span("mip.solve");
  span.detail("clip|rule");
  span.arg("nodes", 3.0);
  EXPECT_EQ(span.id(), 0u);
  span.end();

  obs::Span worker("mip.worker", obs::TraceSession::currentSpanId());
  worker.arg("worker", 0.0);

  obs::event("mip.incumbent");
  obs::event("fault.fired", "singular-basis");
  obs::event("mip.cuts", "", {{"rows", 2.0}, {"round", 1.0}});
}

}  // namespace
}  // namespace optr
