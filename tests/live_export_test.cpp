// LiveMetricsExporter: cadence gating, per-interval snapshot deltas, the
// graceful-shutdown final row, and the atomic-rename publish discipline that
// keeps the exported file complete at every instant (the crash-survivability
// contract the serve daemon and sweep coordinator rely on).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/live_export.h"
#include "obs/metrics.h"

namespace optr {
namespace {

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + ".jsonl";
}

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(LiveExport, EmptyPathDisablesEverything) {
  obs::LiveMetricsExporter exp(obs::LiveExportOptions{});
  EXPECT_FALSE(exp.enabled());
  EXPECT_FALSE(exp.tick());
  exp.finalRow();
  EXPECT_EQ(exp.rowsWritten(), 0);
}

TEST(LiveExport, TickHonorsTheCadenceButFinalRowIsUnconditional) {
  const std::string path = tempPath("live_export_cadence");
  std::remove(path.c_str());
  obs::LiveExportOptions opt;
  opt.path = path;
  opt.intervalSec = 3600.0;  // never elapses inside a test
  obs::LiveMetricsExporter exp(opt);
  ASSERT_TRUE(exp.enabled());
  EXPECT_FALSE(exp.tick());
  EXPECT_FALSE(exp.tick());
  EXPECT_EQ(exp.rowsWritten(), 0);
  EXPECT_FALSE(std::ifstream(path).good()) << "no row, no file";

  // Graceful shutdown always accounts for the tail interval.
  exp.finalRow();
  EXPECT_EQ(exp.rowsWritten(), 1);
  std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"final\":true"), std::string::npos);
}

TEST(LiveExport, RowsCarryIntervalDeltasAndPublishByAtomicRename) {
  const std::string path = tempPath("live_export_rows");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  obs::LiveExportOptions opt;
  opt.path = path;
  opt.intervalSec = 0.0;  // every tick writes a row
  obs::LiveMetricsExporter exp(opt);

  obs::metrics().counter("test.live_export.count").add(5);
  EXPECT_TRUE(exp.tick());
  obs::metrics().counter("test.live_export.count").add(2);
  exp.finalRow();
  EXPECT_EQ(exp.rowsWritten(), 2);

  // The published file holds the FULL accumulated row set (each flush is a
  // rewrite, not an append), and the rename consumed the temp file.
  std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  EXPECT_NE(lines[0].find("\"t\":\"metrics\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"uptimeSec\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"intervalSec\":"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"final\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"final\":true"), std::string::npos);
#if OPTR_OBS_ENABLED
  // Rows are deltas vs the previous row, not cumulative totals: 5 then 2.
  EXPECT_NE(lines[0].find("\"test.live_export.count\":5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"test.live_export.count\":2"), std::string::npos);
#else
  // Disabled builds still export liveness rows, with empty metrics payloads.
  EXPECT_NE(lines[0].find("\"metrics\":{}"), std::string::npos);
#endif
}

}  // namespace
}  // namespace optr
