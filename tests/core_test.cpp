// Integration tests for OptRouter: formulation + MIP + lazy separation.
//
// These are the tests that back the "optimal" in OptRouter: known-answer
// clips, infeasibility proofs, rule-impact direction checks, warm-start
// round trips, and a randomized property suite comparing against the
// heuristic baseline (optimal must never be worse).
#include "core/opt_router.h"

#include <gtest/gtest.h>

#include "route/drc.h"
#include "test_clips.h"

namespace optr::core {
namespace {

using clip::TrackPoint;
using testing::makeClip;
using testing::makeSimpleClip;
using testing::randomClip;

tech::Technology techOf(const clip::Clip& c) {
  return tech::Technology::byName(c.techName).value();
}

RouteResult routeWith(const clip::Clip& c, const tech::RuleConfig& rule,
                      OptRouterOptions opts = {}) {
  return OptRouter(techOf(c), rule, opts).route(c);
}

RouteResult routeDefault(const clip::Clip& c) {
  return routeWith(c, tech::RuleConfig{});
}

TEST(OptRouter, StraightWireOnPreferredDirection) {
  // M2 is horizontal: a 4-step straight connection costs exactly 4.
  auto c = makeSimpleClip(5, 1, 1, {{{0, 0, 0}, {4, 0, 0}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
  EXPECT_EQ(r.wirelength, 4);
  EXPECT_EQ(r.vias, 0);
}

TEST(OptRouter, LayerChangeCostsVias) {
  // Moving in y from M2 requires the vertical M3: up, 3 tracks, down = 3+8.
  auto c = makeSimpleClip(3, 4, 2, {{{1, 0, 0}, {1, 3, 0}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  EXPECT_EQ(r.wirelength, 3);
  EXPECT_EQ(r.vias, 2);
  EXPECT_DOUBLE_EQ(r.cost, 3 + 2 * 4.0);
}

TEST(OptRouter, LShapeUsesOneViaWhenSinkOnUpperLayer) {
  // Sink directly on M3: only one via needed.
  auto c = makeSimpleClip(4, 4, 2, {{{0, 0, 0}, {2, 3, 1}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  // Route: along M2 x:0->2 (2), via up (4), along M3 y:0->3 (3) = 9.
  EXPECT_DOUBLE_EQ(r.cost, 2 + 4 + 3);
}

TEST(OptRouter, SteinerSharingBeatsTwoDisjointPaths) {
  // Source at x=0; sinks at x=4 on neighbouring rows reachable via M3.
  // A shared trunk must be cheaper than two independent connections.
  auto c = makeSimpleClip(5, 3, 2,
                          {{{0, 0, 0}, {4, 0, 0}, {4, 2, 0}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  // Independent: (4) + (4 wl + 2 vias => 4+2+8? path to (4,2,0): 4 x-steps,
  // 2 y-steps, 2 vias = 4+2+8 = 14) = 18 total. Sharing the x-trunk:
  // trunk 0->4 on row 0 (4), then up/over/down (2+8=10) => 14 total.
  EXPECT_LE(r.cost, 14.0 + 1e-9);
  EXPECT_GE(r.cost, 10.0);  // sanity: cannot beat the lower bound
  // Every pin connected (DRC open-net check ran inside OptRouter).
  EXPECT_EQ(r.status, RouteStatus::kOptimal);
}

TEST(OptRouter, TwoNetsShareCongestedRowInfeasible) {
  // One horizontal layer only; two nets both need row 0 through the middle.
  auto c = makeSimpleClip(5, 1, 1,
                          {{{0, 0, 0}, {4, 0, 0}}, {{1, 0, 0}, {3, 0, 0}}});
  auto r = routeDefault(c);
  EXPECT_EQ(r.status, RouteStatus::kInfeasible);
}

TEST(OptRouter, TwoNetsResolveWithSecondLayer) {
  // Same conflict, but a vertical layer lets one net hop over the other --
  // except with tracksY == 1 there is nowhere to go: still infeasible.
  // With 3 rows it becomes routable.
  auto c = makeSimpleClip(5, 3, 2,
                          {{{0, 0, 0}, {4, 0, 0}}, {{1, 0, 0}, {3, 0, 0}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  // Net 0 detours or net 1 hops: detour costs 2 extra wl + 2 vias min.
  EXPECT_GT(r.cost, 4.0 + 2.0);
  grid::RoutingGraph g(c, techOf(c), tech::RuleConfig{});
  route::DrcChecker drc(c, g);
  EXPECT_TRUE(drc.check(r.solution).empty());
}

TEST(OptRouter, MultipleAccessPointsPickTheCheapest) {
  // Sink pin reachable through two access points; the nearer one wins.
  auto c = makeClip(6, 1, 1,
                    {{{{0, 0, 0}}, {{5, 0, 0}, {2, 0, 0}}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(OptRouter, ObstacleForcesDetour) {
  auto c = makeSimpleClip(5, 3, 2, {{{0, 0, 0}, {4, 0, 0}}});
  c.obstacles.push_back({2, 0, 0});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  // Straight is blocked: must hop via M3 (2 vias) around the obstacle.
  EXPECT_GT(r.cost, 4.0);
  EXPECT_GE(r.vias, 2);
}

TEST(OptRouter, PinOwnershipBlocksForeignNets) {
  // Net 1's pin sits on net 0's straight path.
  auto c = makeSimpleClip(5, 3, 2,
                          {{{0, 0, 0}, {4, 0, 0}}, {{2, 0, 0}, {2, 2, 0}}});
  auto r = routeDefault(c);
  ASSERT_EQ(r.status, RouteStatus::kOptimal);
  grid::RoutingGraph g(c, techOf(c), tech::RuleConfig{});
  route::DrcChecker drc(c, g);
  EXPECT_TRUE(drc.check(r.solution).empty());
  // Net 0 cannot go straight through (2,0,0).
  EXPECT_GT(r.cost, 4.0 + (2.0 + 8.0) - 1e-9);
}

TEST(OptRouter, WarmStartDoesNotChangeTheOptimum) {
  auto c = randomClip(/*seed=*/7, 5, 5, 3, 3);
  OptRouterOptions with, without;
  with.warmStart = true;
  without.warmStart = false;
  auto a = routeWith(c, tech::RuleConfig{}, with);
  auto b = routeWith(c, tech::RuleConfig{}, without);
  ASSERT_EQ(a.status, b.status);
  if (a.status == RouteStatus::kOptimal) {
    EXPECT_NEAR(a.cost, b.cost, 1e-6);
  }
}

TEST(OptRouter, ViaRestrictionNeverImprovesCost) {
  // Stacked rule severity: RULE1 (none) <= RULE6 (4-neighbor) <= RULE9 (8).
  auto c = randomClip(/*seed=*/21, 5, 5, 3, 3);
  OptRouterOptions opts;
  opts.mip.timeLimitSec = 30.0;
  auto r1 = routeWith(c, tech::ruleByName("RULE1").value(), opts);
  auto r6 = routeWith(c, tech::ruleByName("RULE6").value(), opts);
  auto r9 = routeWith(c, tech::ruleByName("RULE9").value(), opts);
  ASSERT_EQ(r1.status, RouteStatus::kOptimal);
  if (r6.status == RouteStatus::kOptimal) EXPECT_GE(r6.cost, r1.cost - 1e-6);
  if (r9.status == RouteStatus::kOptimal) EXPECT_GE(r9.cost, r6.status == RouteStatus::kOptimal ? r6.cost - 1e-6 : r1.cost - 1e-6);
}

TEST(OptRouter, SadpNeverImprovesCost) {
  auto c = randomClip(/*seed=*/33, 5, 5, 3, 3);
  OptRouterOptions opts;
  opts.mip.timeLimitSec = 30.0;
  auto r1 = routeWith(c, tech::ruleByName("RULE1").value(), opts);
  auto r2 = routeWith(c, tech::ruleByName("RULE2").value(), opts);
  ASSERT_EQ(r1.status, RouteStatus::kOptimal);
  if (r2.status == RouteStatus::kOptimal) {
    EXPECT_GE(r2.cost, r1.cost - 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Property suite: on random clips, the proven optimum is never worse than
// the heuristic baseline, and returned solutions are always DRC-clean.
// ---------------------------------------------------------------------------

struct RuleCase {
  std::uint64_t seed;
  const char* rule;
};

class OptVsBaseline
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

TEST_P(OptVsBaseline, OptimalNeverWorseAndAlwaysClean) {
  auto [seed, ruleName] = GetParam();
  auto c = randomClip(seed, 5, 5, 3, 3);
  auto rule = tech::ruleByName(ruleName).value();
  auto techn = techOf(c);

  grid::RoutingGraph g(c, techn, rule);
  route::MazeRouter maze(c, g);
  auto mr = maze.route();

  OptRouterOptions opts;
  opts.mip.timeLimitSec = 20.0;
  auto r = routeWith(c, rule, opts);

  if (r.status == RouteStatus::kOptimal) {
    route::DrcChecker drc(c, g);
    EXPECT_TRUE(drc.check(r.solution).empty())
        << "optimal solution fails DRC";
    if (mr.success) {
      EXPECT_LE(r.cost, mr.solution.totalCost(g) + 1e-6)
          << "optimal worse than heuristic baseline";
    }
  } else if (r.status == RouteStatus::kInfeasible) {
    // The baseline must not have found a clean solution if the exact solver
    // proved infeasibility.
    EXPECT_FALSE(mr.success)
        << "baseline found a DRC-clean route on a proven-infeasible clip";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, OptVsBaseline,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 11),
                       ::testing::Values("RULE1", "RULE3", "RULE6")));

}  // namespace
}  // namespace optr::core
