// Tests for the common utilities: geometry, RNG determinism, strings, and
// the Status / ErrorCode taxonomy.
#include <gtest/gtest.h>

#include <set>

#include "common/fault_injection.h"
#include "common/geometry.h"
#include "common/retry_policy.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace optr {
namespace {

TEST(Geometry, RectBasics) {
  Rect r(0, 0, 10, 20);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_TRUE(r.contains(Point{10, 20}));  // inclusive bounds
  EXPECT_FALSE(r.contains(Point{11, 5}));
}

TEST(Geometry, OverlapAndIntersection) {
  Rect a(0, 0, 10, 10), b(5, 5, 15, 15), c(11, 11, 20, 20);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  Rect i = a.intersect(b);
  EXPECT_EQ(i, Rect(5, 5, 10, 10));
  Rect u = a.unite(c);
  EXPECT_EQ(u, Rect(0, 0, 20, 20));
}

TEST(Geometry, RectDistance) {
  Rect a(0, 0, 10, 10);
  EXPECT_EQ(rectDistance(a, Rect(5, 5, 8, 8)), 0);    // overlap
  EXPECT_EQ(rectDistance(a, Rect(15, 0, 20, 10)), 5); // pure x gap
  EXPECT_EQ(rectDistance(a, Rect(15, 15, 20, 20)), 10);  // diagonal gap
}

TEST(Geometry, Manhattan) {
  EXPECT_EQ(manhattan(Point{0, 0}, Point{3, 4}), 7);
  EXPECT_EQ(manhattan(Point{-2, 5}, Point{2, 1}), 8);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    double d = rng.uniformReal();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, CoversTheRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Strings, SplitWhitespace) {
  auto t = splitWhitespace("  a\tbb  ccc \r");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, SplitOnSeparator) {
  auto t = split("a,,b", ',');
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parseInt("42").value_or(-1), 42);
  EXPECT_EQ(parseInt("-7").value_or(1), -7);
  EXPECT_FALSE(parseInt("4x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble("2.5").value_or(0), 2.5);
  EXPECT_FALSE(parseDouble("abc").has_value());
}

TEST(Strings, StartsWithAndFormat) {
  EXPECT_TRUE(startsWith("RULE10", "RULE"));
  EXPECT_FALSE(startsWith("RU", "RULE"));
  EXPECT_EQ(strFormat("%d-%s", 3, "x"), "3-x");
}

TEST(Status, DefaultIsOkWithOkCode) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(Status::ok().code(), ErrorCode::kOk);
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::error(ErrorCode::kDeadline, "out of time");
  EXPECT_FALSE(s.isOk());
  EXPECT_EQ(s.code(), ErrorCode::kDeadline);
  EXPECT_EQ(s.message(), "out of time");
  // Untagged errors and a (nonsensical) kOk tag both land on kInternal:
  // an error Status must never claim to be OK.
  EXPECT_EQ(Status::error("legacy").code(), ErrorCode::kInternal);
  EXPECT_EQ(Status::error(ErrorCode::kOk, "mislabeled").code(),
            ErrorCode::kInternal);
}

TEST(Status, ErrorCodeStringsRoundTrip) {
  for (int i = 0; i < static_cast<int>(ErrorCode::kNumCodes); ++i) {
    auto c = static_cast<ErrorCode>(i);
    EXPECT_EQ(errorCodeFromString(toString(c)), c) << toString(c);
  }
  EXPECT_EQ(errorCodeFromString("no-such-code"), ErrorCode::kInternal);
  EXPECT_STREQ(toString(ErrorCode::kSingularBasis), "singular-basis");
}

TEST(Status, EveryErrorCodeHasADistinctName) {
  // Exhaustive against the kNumCodes sentinel: adding an ErrorCode without
  // extending the string table makes toString fall through to "?" and this
  // test names the offending value. Distinctness keeps errorCodeFromString
  // a bijection (serialized batch rows round-trip unambiguously).
  std::set<std::string> seen;
  for (int i = 0; i < static_cast<int>(ErrorCode::kNumCodes); ++i) {
    const char* name = toString(static_cast<ErrorCode>(i));
    EXPECT_STRNE(name, "?") << "ErrorCode value " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate ErrorCode name: " << name;
  }
}

TEST(Status, EveryFaultSiteHasADistinctName) {
  // Same contract for fault::Site: the names label fault.fired trace events
  // and must stay exhaustive and unique.
  std::set<std::string> seen;
  for (int i = 0; i < static_cast<int>(fault::Site::kNumSites); ++i) {
    const char* name = toString(static_cast<fault::Site>(i));
    EXPECT_STRNE(name, "?") << "fault::Site value " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate fault::Site name: " << name;
  }
}

TEST(RetryPolicy, BacksOffExponentiallyWithoutJitter) {
  common::RetryPolicyOptions opt;
  opt.initialDelaySec = 0.1;
  opt.multiplier = 2.0;
  opt.maxDelaySec = 0.5;
  opt.jitterFrac = 0.0;
  opt.maxAttempts = 6;
  common::RetryPolicy policy(opt);
  // Delays: 0.1, 0.2, 0.4, capped at 0.5, then exhausted (6 tries total =
  // the original + 5 retries).
  EXPECT_DOUBLE_EQ(policy.nextDelaySec().value(), 0.1);
  EXPECT_DOUBLE_EQ(policy.nextDelaySec().value(), 0.2);
  EXPECT_DOUBLE_EQ(policy.nextDelaySec().value(), 0.4);
  EXPECT_DOUBLE_EQ(policy.nextDelaySec().value(), 0.5);
  EXPECT_DOUBLE_EQ(policy.nextDelaySec().value(), 0.5);
  EXPECT_FALSE(policy.nextDelaySec().has_value());
  EXPECT_EQ(policy.attempt(), 6);
}

TEST(RetryPolicy, JitterIsDeterministicForSeedAndBounded) {
  common::RetryPolicyOptions opt;
  opt.initialDelaySec = 1.0;
  opt.multiplier = 1.0;
  opt.maxDelaySec = 1.0;
  opt.jitterFrac = 0.25;
  opt.maxAttempts = 0;  // unbounded
  common::RetryPolicy a(opt, /*jitterSeed=*/42);
  common::RetryPolicy b(opt, /*jitterSeed=*/42);
  common::RetryPolicy c(opt, /*jitterSeed=*/43);
  bool anyDifferent = false;
  for (int i = 0; i < 32; ++i) {
    double da = a.nextDelaySec().value();
    double db = b.nextDelaySec().value();
    double dc = c.nextDelaySec().value();
    EXPECT_DOUBLE_EQ(da, db) << "same seed must give the same schedule";
    EXPECT_GE(da, 0.75);
    EXPECT_LE(da, 1.25);
    anyDifferent |= da != dc;
  }
  EXPECT_TRUE(anyDifferent) << "different seeds should de-synchronize";
}

TEST(RetryPolicy, DeadlineRefusesRetriesThatWouldLandPastIt) {
  common::RetryPolicyOptions opt;
  opt.initialDelaySec = 1.0;
  opt.multiplier = 1.0;
  opt.maxDelaySec = 1.0;
  opt.jitterFrac = 0.0;
  opt.maxAttempts = 0;
  opt.deadlineSec = 10.0;
  common::RetryPolicy policy(opt);
  EXPECT_TRUE(policy.nextDelaySec(/*elapsedSec=*/0.0).has_value());
  EXPECT_TRUE(policy.nextDelaySec(/*elapsedSec=*/8.9).has_value());
  // 9.5 elapsed + 1.0 delay > 10.0: refused, and stays refused.
  EXPECT_FALSE(policy.nextDelaySec(/*elapsedSec=*/9.5).has_value());
}

TEST(RetryPolicy, ResetRestoresTheAttemptBudgetButNotTheJitterStream) {
  common::RetryPolicyOptions opt;
  opt.multiplier = 1.0;  // constant base: only the jitter stream varies
  opt.jitterFrac = 0.25;
  opt.maxAttempts = 2;
  common::RetryPolicy policy(opt, 7);
  // Same seed, unbounded budget: a pure observer of the jitter stream.
  common::RetryPolicyOptions freshOpt = opt;
  freshOpt.maxAttempts = 0;
  common::RetryPolicy fresh(freshOpt, 7);
  double first = policy.nextDelaySec().value();
  EXPECT_DOUBLE_EQ(first, fresh.nextDelaySec().value());
  EXPECT_FALSE(policy.nextDelaySec().has_value());  // budget spent
  policy.reset();
  EXPECT_EQ(policy.attempt(), 1);
  // The budget is back, but the jitter stream continues where it left off
  // (a reused policy keeps its deterministic draw sequence).
  double afterReset = policy.nextDelaySec().value();
  EXPECT_DOUBLE_EQ(afterReset, fresh.nextDelaySec().value());
}

TEST(Status, ReturnIfErrorPropagates) {
  auto fn = [](int v) -> Status {
    OPTR_RETURN_IF_ERROR(v < 0 ? Status::error(ErrorCode::kInvalidInput,
                                               "negative input")
                               : Status::ok());
    return Status::error(ErrorCode::kInternal, "fell through");
  };
  EXPECT_EQ(fn(-1).code(), ErrorCode::kInvalidInput);
  EXPECT_EQ(fn(1).code(), ErrorCode::kInternal);  // macro did not return
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.isOk());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  StatusOr<int> err(Status::error(ErrorCode::kUnavailable, "missing"));
  EXPECT_FALSE(err.isOk());
  EXPECT_EQ(err.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(err.status().message(), "missing");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> err(Status::error(ErrorCode::kNumerical, "bad pivot"));
  EXPECT_DEATH({ (void)err.value(); }, "StatusOr::value.*numerical");
}

}  // namespace
}  // namespace optr
