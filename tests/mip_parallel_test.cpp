// Parallel branch-and-bound determinism and degradation.
//
// The contract under test: for proven-optimal solves, MipOptions.threads is
// a pure performance knob -- the objective, status, and (through OptRouter)
// provenance are identical at any thread count. Node/iteration counters are
// scheduling-dependent and deliberately not asserted. The fault-injection
// case checks the recovery ladder holds when a worker's LP engine fails
// mid-search: honest provenance, taxonomy code, DRC-clean fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/opt_router.h"
#include "ilp/mip.h"
#include "route/drc.h"
#include "tech/technology.h"
#include "test_clips.h"

namespace optr {
namespace {

using clip::TrackPoint;
using ilp::MipOptions;
using ilp::MipResult;
using ilp::MipSolver;
using ilp::MipStatus;
using lp::LpModel;
using lp::RowBuilder;
using lp::RowSense;

int addRow(LpModel& m, RowSense sense, double rhs,
           std::vector<std::pair<int, double>> terms) {
  RowBuilder rb;
  for (auto& [c, v] : terms) rb.add(c, v);
  rb.sense = sense;
  rb.rhs = rhs;
  return m.addRow(rb);
}

/// Same nasty instance family as mip_limits_test: random dense <= rows over
/// binaries with many near-symmetric optima, so the tree search actually
/// branches and the workers contend on the frontier.
LpModel hardModel(int n, std::uint64_t seed) {
  Rng rng(seed);
  LpModel m;
  for (int c = 0; c < n; ++c)
    m.addColumn(-1.0 - 0.001 * static_cast<double>(rng.uniform(10)), 0, 1);
  for (int r = 0; r < n; ++r) {
    RowBuilder rb;
    for (int c = 0; c < n; ++c) {
      if (rng.chance(0.5)) rb.add(c, 1.0 + static_cast<double>(rng.uniform(3)));
    }
    rb.sense = RowSense::kLe;
    rb.rhs = static_cast<double>(2 + rng.uniform(4));
    m.addRow(rb);
  }
  return m;
}

MipResult solveHard(int n, std::uint64_t seed, int threads) {
  LpModel m = hardModel(n, seed);
  MipOptions opt;
  opt.threads = threads;
  MipSolver solver(m, std::vector<bool>(n, true), opt);
  return solver.solve();
}

TEST(MipParallel, HardModelsMatchSerialObjectiveAndStatus) {
  for (auto [n, seed] : {std::pair<int, std::uint64_t>{16, 3},
                         {20, 7},
                         {24, 9},
                         {24, 21}}) {
    MipResult serial = solveHard(n, seed, 1);
    ASSERT_EQ(serial.status, MipStatus::kOptimal)
        << "n=" << n << " seed=" << seed;
    for (int threads : {2, 8}) {
      MipResult par = solveHard(n, seed, threads);
      EXPECT_EQ(par.status, serial.status)
          << "n=" << n << " seed=" << seed << " threads=" << threads;
      EXPECT_NEAR(par.objective, serial.objective, 1e-9)
          << "n=" << n << " seed=" << seed << " threads=" << threads;
      // The proof must be closed: bound meets incumbent.
      EXPECT_NEAR(par.bestBound, par.objective, 1e-6);
    }
  }
}

TEST(MipParallel, LazySeparationMatchesSerial) {
  // Knapsack-ish maximization with a lazy "no adjacent pair" rule, the same
  // shape OptRouter's DRC separation takes. The separator keeps state (a
  // global dedup set) exactly like core::Formulation does -- the solver must
  // serialize calls and sync the pool so the dedup never hides a cut from a
  // worker that needs it.
  for (int threads : {1, 2, 8}) {
    LpModel m;
    std::vector<int> cols;
    for (int i = 0; i < 8; ++i) cols.push_back(m.addColumn(-1, 0, 1));
    addRow(m, RowSense::kLe, 6, {{cols[0], 1}, {cols[1], 1}, {cols[2], 1},
                                 {cols[3], 1}, {cols[4], 1}, {cols[5], 1},
                                 {cols[6], 1}, {cols[7], 1}});
    MipOptions opt;
    opt.threads = threads;
    MipSolver solver(m, std::vector<bool>(8, true), opt);
    std::set<std::pair<int, int>> emitted;  // global dedup, like Formulation
    solver.setLazySeparator(
        [&](const std::vector<double>& x, LpModel& model) {
          int added = 0;
          for (int i = 0; i + 1 < 8; ++i) {
            if (x[i] > 0.5 && x[i + 1] > 0.5 &&
                !emitted.count({i, i + 1})) {
              emitted.insert({i, i + 1});
              addRow(model, RowSense::kLe, 1,
                     {{cols[i], 1}, {cols[i + 1], 1}});
              ++added;
            }
          }
          return added;
        });
    MipResult r = solver.solve();
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "threads=" << threads;
    // Best independent-ish set: 4 alternating variables.
    EXPECT_NEAR(r.objective, -4.0, 1e-6) << "threads=" << threads;
    // The incumbent must satisfy every pair rule, not just the separated
    // ones (a worker racing past a pooled cut would violate this).
    for (int i = 0; i + 1 < 8; ++i) {
      EXPECT_LE(std::round(r.x[i]) + std::round(r.x[i + 1]), 1.0)
          << "threads=" << threads << " pair " << i;
    }
  }
}

TEST(MipParallel, WarmStartIncumbentSurvivesParallelSolve) {
  MipResult serial = solveHard(20, 7, 1);
  ASSERT_EQ(serial.status, MipStatus::kOptimal);

  // Seed the parallel search with the all-zero point (trivially feasible for
  // the <= rows): the workers must still find and prove the true optimum.
  LpModel m = hardModel(20, 7);
  MipOptions opt;
  opt.threads = 4;
  MipSolver solver(m, std::vector<bool>(20, true), opt);
  ASSERT_TRUE(solver.setInitialIncumbent(std::vector<double>(20, 0.0)));
  MipResult r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, serial.objective, 1e-9);
}

TEST(MipParallel, InfeasibleProofAtAnyThreadCount) {
  for (int threads : {1, 2, 8}) {
    LpModel m;
    int x = m.addColumn(1, 0, 1);
    int y = m.addColumn(1, 0, 1);
    addRow(m, RowSense::kEq, 1, {{x, 2}, {y, 2}});  // LP-feasible, IP-infeasible
    MipOptions opt;
    opt.threads = threads;
    MipSolver solver(m, {true, true}, opt);
    EXPECT_EQ(solver.solve().status, MipStatus::kInfeasible)
        << "threads=" << threads;
  }
}

TEST(MipParallel, WorkerStatsSumToTotalsAtAnyThreadCount) {
  // The aggregation invariant pinned by MipWorkerStats: reported pivot and
  // node totals are the sum over *every* worker's private counters, so no
  // work disappears regardless of which worker happened to close the tree.
  // (Historically, safety-net retry pivots inside the LP escaped the count;
  // the per-worker breakdown makes any such leak visible.)
  for (int threads : {1, 2, 4, 8}) {
    MipResult r = solveHard(24, 9, threads);
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "threads=" << threads;
    ASSERT_EQ(r.workers.size(),
              static_cast<std::size_t>(threads == 1 ? 1 : threads))
        << "threads=" << threads;
    std::int64_t nodes = 0, pivots = 0;
    for (const ilp::MipWorkerStats& w : r.workers) {
      EXPECT_GE(w.nodes, 0);
      EXPECT_GE(w.lpIterations, 0);
      EXPECT_GE(w.idleSeconds, 0.0);
      nodes += w.nodes;
      pivots += w.lpIterations;
    }
    EXPECT_EQ(nodes, r.nodes) << "threads=" << threads;
    EXPECT_EQ(pivots, r.lpIterations) << "threads=" << threads;
  }
  // Serial solves never idle: a nonzero idleSeconds there would mean the
  // accounting is touching the parallel path's condition variable.
  MipResult serial = solveHard(16, 3, 1);
  ASSERT_EQ(serial.workers.size(), 1u);
  EXPECT_EQ(serial.workers[0].idleSeconds, 0.0);
}

TEST(MipParallel, NodeLimitReportsTruncationHonestly) {
  LpModel m = hardModel(40, 5);
  MipOptions opt;
  opt.threads = 4;
  opt.maxNodes = 8;
  MipSolver solver(m, std::vector<bool>(40, true), opt);
  MipResult r = solver.solve();
  ASSERT_TRUE(r.status == MipStatus::kFeasibleLimit ||
              r.status == MipStatus::kNoSolutionLimit);
  EXPECT_EQ(r.error.code(), ErrorCode::kIterationLimit);
  // Truncated searches must still report a valid (finite) lower bound.
  EXPECT_GT(r.bestBound, -lp::kInfinity);
  if (r.hasSolution()) {
    EXPECT_LE(r.bestBound, r.objective + 1e-9);
  }
}

// --- Router-level determinism and fault degradation -----------------------

class MipParallelRouterTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  static clip::Clip testClip() {
    return testing::makeSimpleClip(
        5, 5, 3,
        {{TrackPoint{0, 0, 0}, TrackPoint{4, 4, 0}},
         {TrackPoint{0, 4, 0}, TrackPoint{4, 0, 0}}});
  }

  static core::OptRouterOptions routerOptions(int threads) {
    core::OptRouterOptions opt;
    opt.mip.timeLimitSec = 30.0;
    opt.mip.threads = threads;
    opt.mip.lpOptions.refactorInterval = 4;
    return opt;
  }

  static core::RouteResult route(const clip::Clip& c,
                                 core::OptRouterOptions opt) {
    auto techn = tech::Technology::byName(c.techName).value();
    auto rule = tech::ruleByName("RULE1").value();
    return core::OptRouter(techn, rule, opt).route(c);
  }

  static void expectDrcClean(const clip::Clip& c,
                             const core::RouteResult& res) {
    auto techn = tech::Technology::byName(c.techName).value();
    auto rule = tech::ruleByName("RULE1").value();
    grid::RoutingGraph graph(c, techn, rule);
    route::DrcChecker drc(c, graph);
    EXPECT_TRUE(drc.check(res.solution).empty());
  }
};

TEST_F(MipParallelRouterTest, ProvenanceAndCostIdenticalAcrossThreadCounts) {
  clip::Clip c = testClip();
  core::RouteResult serial = route(c, routerOptions(1));
  ASSERT_EQ(serial.status, core::RouteStatus::kOptimal);
  ASSERT_EQ(serial.provenance, core::Provenance::kIlpProven);
  for (int threads : {2, 8}) {
    core::RouteResult par = route(c, routerOptions(threads));
    EXPECT_EQ(par.status, serial.status) << "threads=" << threads;
    EXPECT_EQ(par.provenance, serial.provenance) << "threads=" << threads;
    EXPECT_EQ(par.cost, serial.cost) << "threads=" << threads;
    expectDrcClean(c, par);
  }
}

TEST_F(MipParallelRouterTest, SingularBasisInWorkersStillDegradesHonestly) {
  clip::Clip c = testClip();
  core::RouteResult clean = route(c, routerOptions(1));
  ASSERT_EQ(clean.status, core::RouteStatus::kOptimal);

  // Every refactorization in every worker fails: no worker can prove
  // anything, so the ladder must hand back the validated warm-start
  // incumbent (or maze fallback) -- never a crash, never a silent wrong
  // answer, at any thread count.
  fault::ScopedFault f(fault::Site::kSingularBasis, 0, fault::kAlways);
  core::RouteResult res = route(c, routerOptions(4));
  EXPECT_GE(f.fired(), 2);  // each worker attempts + retries
  ASSERT_TRUE(res.hasSolution());
  EXPECT_EQ(res.status, core::RouteStatus::kFeasible);
  EXPECT_TRUE(res.provenance == core::Provenance::kIlpIncumbent ||
              res.provenance == core::Provenance::kMazeFallback);
  EXPECT_EQ(res.error.code(), ErrorCode::kSingularBasis);
  EXPECT_GE(res.solverRetries, 1);
  EXPECT_GE(res.cost, clean.cost);
  expectDrcClean(c, res);
}

}  // namespace
}  // namespace optr
